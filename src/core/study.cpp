#include "core/study.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "core/trace_report.h"
#include "devices/paper_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scanner/scanner.h"
#include "sim/parallel.h"

namespace ofh::core {
namespace {

// Wraps one Study phase in a trace span: sim timestamps are deterministic,
// the wall-clock duration feeds only the profile channel. When the scope
// closes it optionally appends a Prometheus snapshot to the Study's
// phase_metrics_ sequence (sub-spans like scan/filter pass nullptr).
class PhaseScope {
 public:
  PhaseScope(std::string name, sim::Simulation& sim,
             std::vector<std::pair<std::string, std::string>>* phase_metrics)
      : name_(std::move(name)),
        sim_(sim),
        phase_metrics_(phase_metrics),
        sim_start_(sim.now()),
        wall_start_(std::chrono::steady_clock::now()) {}

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  ~PhaseScope() {
    const auto wall_usec =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wall_start_)
            .count();
    obs::record_span(name_, sim_start_, sim_.now(),
                     static_cast<std::uint64_t>(wall_usec));
    if (phase_metrics_ != nullptr) {
      phase_metrics_->emplace_back(
          name_, obs::Registry::global().export_prometheus());
    }
  }

 private:
  std::string name_;
  sim::Simulation& sim_;
  std::vector<std::pair<std::string, std::string>>* phase_metrics_;
  std::uint64_t sim_start_;
  std::chrono::steady_clock::time_point wall_start_;
};

std::uint64_t scale_count(std::uint64_t paper, double scale) {
  if (paper == 0) return 0;
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(paper * scale + 0.5));
}

// One protocol sweep's output, produced on a worker thread.
struct ScanShard {
  std::vector<scanner::ScanRecord> records;  // in event (= time) order
  std::uint64_t probes = 0;
  sim::Time finished = 0;  // shard clock when the sweep resolved
};

// Runs one sweep on a private replica of the simulated Internet. The
// replica repeats Study::setup_internet()'s allocation order exactly
// (population build, then wild honeypots), so every address — devices and
// honeypots alike — matches the main internet's; the telescope is omitted
// because sweeps only target populated prefixes, never the darknet. Each
// shard owns its Simulation, Fabric and ScanDb, so shards share no mutable
// state and are free to run concurrently.
ScanShard run_scan_shard(const StudyConfig& config, proto::Protocol protocol,
                         std::uint64_t sweep_seed, sim::Time start,
                         std::uint16_t trace_shard) {
  // All trace events this sweep produces — probe mints, packet fates, TCP
  // transitions — land in the sweep's own deterministic shard recorder
  // (shard 0 is the main simulation), regardless of which worker thread
  // runs the job.
  const obs::TraceShardScope trace_scope(trace_shard);
  sim::Simulation sim;
  net::Fabric fabric(sim, config.seed);
  fabric.set_latency(sim::msec(15), sim::msec(25));

  devices::PopulationSpec spec;
  spec.seed = config.seed;
  spec.scale = config.population_scale;
  devices::Population population(spec);
  population.build();
  population.attach_all(fabric);

  std::vector<std::unique_ptr<honeynet::WildHoneypot>> honeypots;
  for (const auto& signature : honeynet::honeypot_signatures()) {
    const auto count =
        scale_count(signature.paper_count, config.population_scale);
    for (std::uint64_t i = 0; i < count; ++i) {
      honeypots.push_back(std::make_unique<honeynet::WildHoneypot>(
          signature, population.allocate_extra()));
      honeypots.back()->attach(fabric);
    }
  }

  scanner::ScanDb db;
  scanner::Scanner scanner(util::Ipv4Addr(192, 35, 168, 10), db);
  scanner.attach(fabric);
  if (start > sim.now()) sim.run_until(start);

  scanner::ScanConfig scan;
  scan.protocol = protocol;
  scan.targets = population.prefixes();
  scan.blocklist = scanner::default_blocklist();
  scan.seed = sweep_seed;
  scan.batch_size = config.scan_batch;
  bool done = false;
  scanner.start(scan, [&done] { done = true; });
  while (!done && sim.step()) {
  }

  ScanShard shard;
  shard.records = db.records();
  shard.probes = db.probes_sent();
  shard.finished = sim.now();
  return shard;
}

}  // namespace

Study::Study(StudyConfig config) : config_(config) {
  // One Study at a time: the obs registry is process-wide and cumulative,
  // so each study starts from zero. Callers comparing metrics across runs
  // must snapshot (metrics_prometheus / trace_json) before constructing the
  // next Study.
  obs::Registry::global().reset();
  obs::TraceRegistry::global().reset();
  fabric_ = std::make_unique<net::Fabric>(sim_, config_.seed);
  fabric_->set_latency(sim::msec(15), sim::msec(25));
}

Study::~Study() = default;

std::uint64_t Study::scaled_population(std::uint64_t paper) const {
  return scale_count(paper, config_.population_scale);
}

std::uint64_t Study::scaled_attack(std::uint64_t paper) const {
  return scale_count(paper, config_.attack_scale);
}

void Study::setup_internet() {
  PhaseScope span("setup", sim_, &phase_metrics_);
  devices::PopulationSpec spec;
  spec.seed = config_.seed;
  spec.scale = config_.population_scale;
  population_ = std::make_unique<devices::Population>(spec);
  population_->build();
  population_->attach_all(*fabric_);

  // Plant third-party honeypots (Table 6 ground truth) among the devices.
  for (const auto& signature : honeynet::honeypot_signatures()) {
    const auto count = scaled_population(signature.paper_count);
    for (std::uint64_t i = 0; i < count; ++i) {
      auto honeypot = std::make_unique<honeynet::WildHoneypot>(
          signature, population_->allocate_extra());
      honeypot->attach(*fabric_);
      wild_honeypots_.push_back(std::move(honeypot));
    }
  }

  telescope_ = std::make_unique<telescope::Telescope>(config_.telescope_range);
  telescope_->attach(*fabric_);
  rsdos_ = std::make_unique<telescope::RsdosDetector>(config_.telescope_range);
  rsdos_->attach(*fabric_);

  geo_ = std::make_unique<intel::GeoDb>(*population_);
}

void Study::run_scan() {
  PhaseScope span("scan", sim_, &phase_metrics_);
  // Six sweeps spread across one week at the paper's day offsets
  // (Appendix Table 9: CoAP Mar 1; UPnP+Telnet Mar 2; MQTT+AMQP Mar 4;
  // XMPP Mar 5). Each sweep is an independent shard with a splitmix64-
  // derived seed; shards execute on config_.scan_threads workers and their
  // records merge by (time, shard, seq), so scan_db_ is byte-identical no
  // matter how many threads ran (DESIGN.md "Threading model").
  static constexpr std::uint64_t kDayOffsets[] = {0, 1, 1, 3, 3, 4};
  const sim::Time scan_epoch = sim_.now();
  const auto& protocols = proto::scanned_protocols();

  std::vector<std::function<ScanShard()>> jobs;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const proto::Protocol protocol = protocols[i];
    const sim::Time start = scan_epoch + sim::days(kDayOffsets[i]);
    scan_dates_[protocol] = start;
    const std::uint64_t sweep_seed = sim::shard_seed(config_.seed, i);
    const auto trace_shard = static_cast<std::uint16_t>(i + 1);
    jobs.emplace_back([this, protocol, sweep_seed, start, trace_shard] {
      return run_scan_shard(config_, protocol, sweep_seed, start,
                            trace_shard);
    });
  }
  auto shards = sim::ParallelRunner(config_.scan_threads).run(std::move(jobs));

  sim::Time scan_end = scan_epoch;
  std::vector<std::vector<scanner::ScanRecord>> per_shard;
  per_shard.reserve(shards.size());
  for (auto& shard : shards) {
    scan_end = std::max(scan_end, shard.finished);
    scan_db_.note_probes(shard.probes);
    per_shard.push_back(std::move(shard.records));
  }
  for (auto& record : sim::merge_by_time(
           std::move(per_shard),
           [](const scanner::ScanRecord& record) { return record.when; })) {
    scan_db_.add(std::move(record));
  }

  // The main timeline advances to the end of the scan window, exactly as it
  // did when the sweeps ran inline on the main simulation.
  sim_.run_until(scan_end);

  // Classification + honeypot filtering is its own sub-span: it runs on the
  // merged DB after the sweeps, and the paper treats it as a distinct step.
  PhaseScope filter_span("filter", sim_, nullptr);
  unfiltered_findings_ = classify::classify_all(scan_db_);
  fingerprints_ = classify::fingerprint_all(scan_db_);
  findings_ = config_.filter_honeypots
                  ? classify::filter_honeypots(unfiltered_findings_,
                                               fingerprints_)
                  : unfiltered_findings_;
  // One kVerdict trace event per surviving finding, closing the causal
  // chain scan probe -> banner -> classifier verdict. Findings are already
  // in deterministic (merged scan DB) order; all verdicts land in shard 0.
  for (const auto& finding : findings_) {
    obs::trace_event(obs::TraceEventType::kVerdict, sim_.now(), 0,
                     finding.host.value(), 0, 0,
                     static_cast<std::uint8_t>(finding.misconfig),
                     static_cast<std::uint8_t>(finding.protocol));
  }
}

void Study::run_datasets() {
  PhaseScope span("datasets", sim_, &phase_metrics_);
  sonar_ = datasets::generate_snapshot(datasets::project_sonar_model(),
                                       *population_, config_.seed + 11);
  shodan_ = datasets::generate_snapshot(datasets::shodan_model(),
                                        *population_, config_.seed + 12);
}

void Study::run_attack_month() {
  PhaseScope span("attack_month", sim_, &phase_metrics_);
  // Six public addresses for the honeypot groups (Figure 1).
  std::vector<util::Ipv4Addr> addresses;
  for (int i = 0; i < 6; ++i) {
    addresses.push_back(population_->allocate_extra());
  }
  deployment_ = honeynet::make_deployment(addresses, attack_log_);
  for (auto& honeypot : deployment_.honeypots) {
    honeypot->attach(*fabric_);
  }

  attackers::FleetConfig fleet_config;
  fleet_config.seed = config_.seed + 7;
  fleet_config.duration = config_.attack_duration;
  fleet_config.event_scale = config_.attack_scale;
  fleet_config.listing_boost = config_.listing_boost;
  fleet_ = std::make_unique<attackers::Fleet>(fleet_config, *population_,
                                              deployment_, *telescope_);
  fleet_->deploy(*fabric_, rdns_, virustotal_, greynoise_, censys_);

  const sim::Time start = sim_.now();
  sim_.run_until(start + config_.attack_duration + sim::hours(1));
}

void Study::correlate() {
  PhaseScope span("correlate", sim_, &phase_metrics_);
  infected_ = correlate_infected(findings_, attack_log_, *telescope_);
  std::set<std::uint32_t> correlated;
  correlated.insert(infected_.both.begin(), infected_.both.end());
  correlated.insert(infected_.honeypot_only.begin(),
                    infected_.honeypot_only.end());
  correlated.insert(infected_.telescope_only.begin(),
                    infected_.telescope_only.end());
  censys_extra_ =
      censys_extra_iot(attack_log_, *telescope_, correlated, censys_);
}

void Study::run_all() {
  setup_internet();
  run_scan();
  run_datasets();
  run_attack_month();
  correlate();
}

std::string Study::metrics_prometheus() const {
  return obs::Registry::global().export_prometheus();
}

std::string Study::metrics_csv() const {
  return obs::Registry::global().export_csv();
}

std::string Study::metrics_profile() const {
  return obs::Registry::global().export_profile();
}

std::string Study::trace_json() const { return trace_chrome_json(); }

std::string Study::attack_chains() const { return attack_chain_report(); }

std::vector<std::string> Study::scan_service_domains() const {
  std::vector<std::string> domains;
  for (const auto& spec : attackers::scan_service_specs()) {
    domains.push_back(spec.domain);
  }
  return domains;
}

}  // namespace ofh::core
