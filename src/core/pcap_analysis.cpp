#include "core/pcap_analysis.h"

#include "util/bytes.h"

namespace ofh::core {

namespace {

bool is_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

}  // namespace

MalwareReport analyze_capture(const net::PacketCapture& capture,
                              const intel::VirusTotalDb& virustotal) {
  MalwareReport report;
  static constexpr std::string_view kMarker = "sha256=";

  for (const auto& record : capture.records()) {
    const std::string text = util::to_string(record.packet.payload);
    std::size_t pos = 0;
    while ((pos = text.find(kMarker, pos)) != std::string::npos) {
      pos += kMarker.size();
      if (pos + 64 > text.size()) break;
      const std::string digest = text.substr(pos, 64);
      bool valid = true;
      for (const char c : digest) {
        if (!is_hex(c)) valid = false;
      }
      if (!valid) continue;
      const auto family = virustotal.lookup_hash(digest);
      if (family) {
        report.variants_by_family[*family].insert(digest);
      } else {
        report.unknown_hashes.insert(digest);
      }
    }
  }
  return report;
}

}  // namespace ofh::core
