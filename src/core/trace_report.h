// Exporters over the obs/trace.h flight recorder. They live in core (not
// obs) because rendering an event needs the protocol / attack-type /
// misconfiguration name tables from the proto, honeynet and devices layers,
// which the base obs library must not link against.
//
// Both exports are deterministic: they read only sim-time-stamped events in
// the (time, shard, seq) total order plus the sim timestamps of the phase
// spans, so the bytes are identical for any scan_threads setting.
#pragma once

#include <string>

namespace ofh::core {

// Chrome trace-event JSON ("JSON Object Format") over the current trace
// registry: phase spans as "ph":"X" complete events (ts/dur = sim-time
// microseconds; wall durations never appear) and flight-recorder events as
// "ph":"i" instant events, one track (tid) per deterministic shard. Loads
// in Perfetto and chrome://tracing.
std::string trace_chrome_json();

// Deterministic text report reconstructing causal narratives from the
// session-class trace events: per-source multistage attack chains (the
// Figure 9 analogue) and the scan x honeynet x telescope provenance join
// (the Section 5.3 analogue), plus flight-recorder accounting.
std::string attack_chain_report();

}  // namespace ofh::core
