// Scenario description language: small declarative .ofh files that select a
// study configuration (population/attack scales, duration, attacker roster,
// fault schedule) and pin the reports it must emit with ordered regexp
// expectations — the sftpserver test idiom (script lines interleaved with
// '#'-prefixed regexps) applied to the whole measurement pipeline. Each
// checked-in scenario under tests/scenarios/ is discovered as an individual
// CTest case (label `scenario`), runs the full study at scan_threads 1/2/8,
// and must emit byte-identical reports at every thread count before the
// expectations are even consulted.
//
// Format, line oriented:
//   //  comment                     (blank lines are skipped)
//   scenario <title...>             informational title
//   seed / scale / attack-scale / duration-days / scan-threads / scan-batch
//   scan-attempts / session-attempts / filter-honeypots / listing-boost /
//   telescope-range / telescope-rate-scale / telescope-source-scale /
//   fault-budget                    one StudyConfig knob each
//   roster <group> on|off           attacker-group toggle (attackers::Roster)
//   fault <kind> <args...>          assembles a net::FaultSchedule
//   report <name>                   emit one report; subsequent '#' lines
//   #<regexp>                       must match the report's lines, in order
//
// Numbers accept "1/8192" fractions wherever a scale is expected. The
// parser is the trust boundary for the fuzzer (tools/scenario_fuzz): any
// hostile input must produce a typed ScenarioError with file:line
// provenance — never an exception, never a partially-applied StudyConfig.
// See DESIGN.md §13 for the grammar table and matching semantics.
#pragma once

#include <optional>
#include <regex>
#include <string>
#include <string_view>
#include <vector>

#include "core/study.h"

namespace ofh::core {

enum class ScenarioErrorCode {
  kIo,                  // file unreadable / too large
  kSyntax,              // malformed line (overlong, empty scenario, ...)
  kUnknownDirective,    // first token is not a directive
  kDuplicateDirective,  // a single-valued knob set twice
  kBadValue,            // operand failed to parse (count/format)
  kOutOfRange,          // parsed value rejected by StudyConfig::validate
  kOrphanExpectation,   // '#' line before any report directive
  kBadRegex,            // expectation failed to compile / too long
  kUnknownReport,       // report name not in scenario_report_names()
};
std::string_view scenario_error_code_name(ScenarioErrorCode code);

struct ScenarioError {
  std::string file;
  int line = 0;  // 1-based; 0 when no line applies (I/O errors)
  ScenarioErrorCode code = ScenarioErrorCode::kSyntax;
  std::string message;

  // "file:line: code: message" — the exact text tests/scenario_test.cpp
  // pins for the seeded-bad fixture corpus.
  std::string to_string() const;
};

struct ScenarioExpectation {
  int line = 0;         // provenance in the .ofh file
  std::string pattern;  // regexp source (everything after the '#')
  std::regex regex;     // compiled ECMAScript form
};

struct ScenarioReport {
  int line = 0;
  std::string name;
  std::vector<ScenarioExpectation> expectations;
};

struct Scenario {
  std::string file;  // "<inline>" for parse_scenario_text callers
  std::string title;
  StudyConfig config;
  // `fault chaos <end-day>`: > 0 requests the canned FaultSchedule::chaos
  // plan. It needs victim ranges, so it is resolved against the population
  // prefixes at run time (run_scenario), not at parse time; explicitly
  // parsed scalar fault knobs and windows layer on top of the canned plan.
  double chaos_end_days = 0.0;
  // True when any report block is degradation-vs-baseline: run_scenario
  // first runs a fault-free twin (schedule cleared, retries reset) to
  // produce the DegradationBaseline the report compares against.
  bool wants_baseline = false;
  std::vector<ScenarioReport> reports;
};

// Every name `report` accepts: the paper tables/figures (core/reports.h),
// "summary" (pipeline totals), "degradation" / "degradation-vs-baseline"
// (Study::degradation_report) and "chains" (Study::attack_chains).
const std::vector<std::string>& scenario_report_names();

// On failure fills *error and returns nullopt — no partial Scenario escapes.
std::optional<Scenario> parse_scenario_text(std::string_view text,
                                            std::string_view file,
                                            ScenarioError* error);
std::optional<Scenario> parse_scenario_file(const std::string& path,
                                            ScenarioError* error);

struct ScenarioRunOptions {
  // The study runs once per entry; every run's reports must be
  // byte-identical to the first (the determinism contract). {1, 2, 8} is
  // the corpus gate; the fuzzer uses {1}.
  std::vector<unsigned> thread_sweep = {1, 2, 8};
  bool check_expectations = true;
};

struct ScenarioReportOutput {
  std::string name;
  std::string text;
};

struct ScenarioResult {
  bool passed = true;
  // Human-readable failures, file:line anchored where possible: expectation
  // misses (with the report region searched) and cross-thread divergences.
  std::vector<std::string> failures;
  // Rendered report outputs from the first sweep entry, aligned with
  // Scenario::reports (scenario_runner --show/--update consume these).
  std::vector<ScenarioReportOutput> reports;
};

ScenarioResult run_scenario(const Scenario& scenario,
                            const ScenarioRunOptions& options = {});

// --- helpers shared with scenario_runner --update (exposed for tests) ----
// Escapes a report line into a regexp matching it exactly.
std::string escape_expectation(std::string_view line);
// Longest literal prefix of a pattern (stops at the first unescaped regexp
// metacharacter); --update uses it to re-anchor a stale pinned expectation
// onto the drifted report line that replaced it.
std::string expectation_literal_prefix(std::string_view pattern);

}  // namespace ofh::core
