#include "core/trace_report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string_view>
#include <vector>

#include "devices/misconfig.h"
#include "honeynet/event_log.h"
#include "net/faults.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/service.h"
#include "sim/time.h"
#include "util/ipv4.h"

namespace ofh::core {
namespace {

using obs::TraceEvent;
using obs::TraceEventType;

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  append_json_escaped(out, text);
  out += '"';
}

std::string_view protocol_label(std::uint8_t code) {
  if (code > static_cast<std::uint8_t>(proto::Protocol::kS7)) return "other";
  return proto::protocol_name(static_cast<proto::Protocol>(code));
}

std::string_view attack_label(std::uint8_t code) {
  if (code > static_cast<std::uint8_t>(honeynet::AttackType::kMultistageStep))
    return "?";
  return honeynet::attack_type_name(static_cast<honeynet::AttackType>(code));
}

std::string_view misconfig_label(std::uint8_t code) {
  if (code > static_cast<std::uint8_t>(devices::Misconfig::kUpnpReflector))
    return "?";
  return devices::misconfig_name(static_cast<devices::Misconfig>(code));
}

std::string_view fault_label(std::uint8_t code) {
  if (code >= net::kFaultKindCount) return "?";
  return net::fault_kind_name(static_cast<net::FaultKind>(code));
}

// Track grouping for the Chrome viewer's category filter.
std::string_view category_of(TraceEventType type) {
  switch (type) {
    case TraceEventType::kPacketSend:
    case TraceEventType::kPacketDeliver:
    case TraceEventType::kPacketDrop:
      return "packet";
    case TraceEventType::kTcpState: return "tcp";
    case TraceEventType::kProbe: return "probe";
    case TraceEventType::kSessionBegin:
    case TraceEventType::kSessionCommand:
    case TraceEventType::kSessionEnd:
      return "session";
    case TraceEventType::kFlowTuple:
    case TraceEventType::kBackscatter:
      return "telescope";
    case TraceEventType::kVerdict: return "verdict";
    case TraceEventType::kPacketFault:
    case TraceEventType::kHostFault:
      return "fault";
  }
  return "trace";
}

// The type-specific decoding of the a/b detail bytes, rendered as one args
// entry so the viewer shows readable strings instead of codes.
void append_event_args(std::string& out, const TraceEvent& event) {
  switch (event.type) {
    case TraceEventType::kTcpState:
      out += ",\"state\":";
      append_json_string(
          out, obs::tcp_trace_name(static_cast<obs::TcpTrace>(event.a)));
      break;
    case TraceEventType::kProbe:
      out += ",\"origin\":";
      append_json_string(out, event.a == 0 ? "scanner" : "attacker");
      out += ",\"protocol\":";
      append_json_string(out, protocol_label(event.b));
      break;
    case TraceEventType::kSessionBegin:
    case TraceEventType::kSessionEnd:
      out += ",\"protocol\":";
      append_json_string(out, protocol_label(event.b));
      break;
    case TraceEventType::kSessionCommand:
      out += ",\"attack\":";
      append_json_string(out, attack_label(event.a));
      out += ",\"protocol\":";
      append_json_string(out, protocol_label(event.b));
      break;
    case TraceEventType::kVerdict:
      out += ",\"misconfig\":";
      append_json_string(out, misconfig_label(event.a));
      out += ",\"protocol\":";
      append_json_string(out, protocol_label(event.b));
      break;
    case TraceEventType::kFlowTuple:
      out += ",\"protocol\":";
      append_json_string(out, protocol_label(event.b));
      break;
    case TraceEventType::kPacketFault:
      out += ",\"fault\":";
      append_json_string(out, fault_label(event.a));
      break;
    case TraceEventType::kHostFault:
      out += ",\"fault\":";
      append_json_string(out, event.a == 0 ? "crash" : "restart");
      break;
    default:
      break;
  }
}

// --------------------------------------------------------- chain building

// One stage of a source's honeypot narrative: consecutive same-type
// commands collapse into a single stage (10 failed logins = one
// brute-force stage), matching how Figure 9 presents chains.
struct ChainStage {
  std::uint8_t attack_type = 0;
  std::uint8_t protocol = 0;
  std::uint64_t events = 0;
  std::uint64_t first_time = 0;
  std::uint64_t last_time = 0;
};

struct SourceChain {
  std::uint32_t source = 0;
  std::vector<ChainStage> stages;
  std::uint64_t events = 0;
};

bool is_scan_stage(std::uint8_t type) {
  const auto t = static_cast<honeynet::AttackType>(type);
  return t == honeynet::AttackType::kScan ||
         t == honeynet::AttackType::kDiscovery;
}

bool is_bruteforce_stage(std::uint8_t type) {
  const auto t = static_cast<honeynet::AttackType>(type);
  return t == honeynet::AttackType::kBruteForce ||
         t == honeynet::AttackType::kDictionary;
}

bool is_injection_stage(std::uint8_t type) {
  const auto t = static_cast<honeynet::AttackType>(type);
  return t == honeynet::AttackType::kMalwareDrop ||
         t == honeynet::AttackType::kPoisoning ||
         t == honeynet::AttackType::kExploit;
}

// True when the chain contains a scan stage, then (later) a brute-force
// stage, then (later still) an injection stage — the paper's canonical
// scanning -> credentials -> payload escalation.
bool has_escalation(const SourceChain& chain) {
  int progress = 0;
  for (const auto& stage : chain.stages) {
    if (progress == 0 && is_scan_stage(stage.attack_type)) progress = 1;
    else if (progress == 1 && is_bruteforce_stage(stage.attack_type))
      progress = 2;
    else if (progress == 2 && is_injection_stage(stage.attack_type))
      return true;
  }
  return false;
}

std::vector<SourceChain> build_chains(const std::vector<TraceEvent>& events) {
  // events are already in the (time, shard, seq) total order, so each
  // source's command sequence comes out time-ordered.
  std::map<std::uint32_t, SourceChain> by_source;
  for (const auto& event : events) {
    if (event.type != TraceEventType::kSessionCommand) continue;
    SourceChain& chain = by_source[event.src];
    chain.source = event.src;
    ++chain.events;
    if (!chain.stages.empty() &&
        chain.stages.back().attack_type == event.a &&
        chain.stages.back().protocol == event.b) {
      ++chain.stages.back().events;
      chain.stages.back().last_time = event.time;
      continue;
    }
    ChainStage stage;
    stage.attack_type = event.a;
    stage.protocol = event.b;
    stage.events = 1;
    stage.first_time = event.time;
    stage.last_time = event.time;
    chain.stages.push_back(stage);
  }
  std::vector<SourceChain> chains;
  chains.reserve(by_source.size());
  for (auto& [source, chain] : by_source) chains.push_back(std::move(chain));
  return chains;  // already sorted by source (map order)
}

}  // namespace

std::string trace_chrome_json() {
  const auto spans = obs::Registry::global().spans();
  const auto events = obs::TraceRegistry::global().merged();

  std::string out;
  out.reserve(256 + spans.size() * 96 + events.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // Phase spans as complete events on the coordinating track. Only sim
  // timestamps are exported; the wall-clock channel stays in the profile.
  for (const auto& span : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, span.name);
    out += ",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(span.sim_start);
    out += ",\"dur\":";
    out += std::to_string(span.sim_end - span.sim_start);
    out += ",\"pid\":1,\"tid\":0}";
  }

  for (const auto& event : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, obs::trace_event_name(event.type));
    out += ",\"cat\":";
    append_json_string(out, category_of(event.type));
    out += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    out += std::to_string(event.time);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(event.shard);
    out += ",\"args\":{\"trace_id\":";
    char id[24];
    std::snprintf(id, sizeof(id), "\"0x%llx\"",
                  static_cast<unsigned long long>(event.trace_id));
    out += id;
    out += ",\"src\":";
    append_json_string(out, util::Ipv4Addr(event.src).to_string());
    out += ",\"dst\":";
    append_json_string(out, util::Ipv4Addr(event.dst).to_string());
    out += ",\"port\":";
    out += std::to_string(event.port);
    append_event_args(out, event);
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string attack_chain_report() {
  auto& registry = obs::TraceRegistry::global();
  const auto events = registry.merged();
  const auto chains = build_chains(events);

  std::string out;
  out += "attack-chain provenance (trace-derived)\n";
  out += "flight recorder: " + std::to_string(registry.events_recorded()) +
         " events recorded, " + std::to_string(registry.events_dropped()) +
         " evicted (ring capacity " +
         std::to_string(registry.packet_capacity()) + " packet / " +
         std::to_string(registry.session_capacity()) +
         " session events per shard)\n";

  // ---- Figure 9 analogue: multistage chains per source ------------------
  out += "\nmultistage chains (>= 2 stages, per source):\n";
  constexpr std::size_t kMaxPrinted = 40;
  std::size_t multistage = 0;
  std::size_t escalations = 0;
  for (const auto& chain : chains) {
    if (chain.stages.size() < 2) continue;
    ++multistage;
    if (has_escalation(chain)) ++escalations;
    if (multistage > kMaxPrinted) continue;
    out += "  " + util::Ipv4Addr(chain.source).to_string() + "  d" +
           std::to_string(sim::to_days(chain.stages.front().first_time)) +
           ": ";
    for (std::size_t i = 0; i < chain.stages.size(); ++i) {
      const auto& stage = chain.stages[i];
      if (i != 0) out += " -> ";
      out += std::string(attack_label(stage.attack_type)) + "[" +
             std::string(protocol_label(stage.protocol)) + "]";
      if (stage.events > 1) {
        out += " x" + std::to_string(stage.events);
      }
    }
    out += "\n";
  }
  if (multistage > kMaxPrinted) {
    out += "  ... and " + std::to_string(multistage - kMaxPrinted) +
           " more chains\n";
  }
  out += "sources with multistage chains: " + std::to_string(multistage) +
         " of " + std::to_string(chains.size()) + " attacking sources\n";
  out += "scan -> brute-force -> injection escalations: " +
         std::to_string(escalations) + "\n";

  // ---- Section 5.3 analogue: scan x honeynet x telescope join -----------
  std::set<std::uint32_t> honeynet_sources;
  std::set<std::uint32_t> telescope_sources;
  std::set<std::uint32_t> misconfigured_hosts;
  for (const auto& event : events) {
    switch (event.type) {
      case TraceEventType::kSessionCommand:
        honeynet_sources.insert(event.src);
        break;
      case TraceEventType::kFlowTuple:
        telescope_sources.insert(event.src);
        break;
      case TraceEventType::kVerdict:
        misconfigured_hosts.insert(event.src);
        break;
      default:
        break;
    }
  }
  const auto intersect = [](const std::set<std::uint32_t>& a,
                            const std::set<std::uint32_t>& b) {
    std::vector<std::uint32_t> both;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(both));
    return both.size();
  };
  out += "\nprovenance join (sources seen across experiments):\n";
  out += "  honeynet sources (session commands): " +
         std::to_string(honeynet_sources.size()) + "\n";
  out += "  telescope sources (flowtuples):      " +
         std::to_string(telescope_sources.size()) + "\n";
  out += "  misconfigured hosts (verdicts):      " +
         std::to_string(misconfigured_hosts.size()) + "\n";
  out += "  honeynet & telescope:                " +
         std::to_string(intersect(honeynet_sources, telescope_sources)) +
         "\n";
  out += "  misconfigured & honeynet:            " +
         std::to_string(intersect(misconfigured_hosts, honeynet_sources)) +
         "\n";
  out += "  misconfigured & telescope:           " +
         std::to_string(intersect(misconfigured_hosts, telescope_sources)) +
         "\n";
  return out;
}

}  // namespace ofh::core
