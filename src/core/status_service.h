// Wire-served live status endpoint: a tiny single-threaded poll-loop
// server exposing IntrospectionHub snapshots, the progress-event stream
// and the study's text exports over a length-prefixed binary protocol.
// This is the first real wire the ByteReader/ByteWriter codec layer serves
// (ROADMAP item 2's worker fleet speaks the same framing) and the query
// half of ROADMAP item 5's `ofh-studyd` serving mode.
//
// Protocol (all integers big-endian, built on util::ByteWriter/ByteReader):
//
//   frame    := u32 body_length | body
//   request  := u8 tag | payload            (body_length <= 64)
//   response := u8 (0x80 | request tag) | payload
//   error    := u8 0x7f | u8 code | str16 message
//
// Request tags and response payloads:
//   1 status        -> u64 epoch, u8 phase, str8 phase_name, u64 sim_now,
//                      u64 sim_day, u64 sweep_done, u64 sweep_total,
//                      u8 sweep_count x { str8 name, u64 done, u64 total },
//                      u64 trace_recorded, u64 trace_dropped,
//                      u64 events_published,
//                      u8 kind_count x u64 per-kind event totals,
//                      u64 rss_bytes, u64 vm_hwm_bytes,
//                      u64 hosts_per_sec_milli, u64 packets_per_sec_milli,
//                      u64 eta_ms (UINT64_MAX = unknown),
//                      u64 wall_elapsed_ms
//   2 progress      -> payload: u64 cursor (empty = 0). Response:
//                      u64 next_cursor, u64 lost, u16 count x
//                      { u64 seq, u8 kind, u8 phase, u16 shard,
//                        u64 sim_time, u64 a, u64 b }
//   3 metrics       -> u32 length | Prometheus text (wall metrics included;
//                      this is a live observability channel, not a
//                      deterministic export)
//   4 phase-metrics -> u32 length | per-phase Prometheus captures
//   5 degradation   -> u32 length | degradation report text
//   6 trace-stats   -> u16 count x { u16 shard, u64 recorded, u64 dropped }
//   7 stop          -> empty (only when Options::allow_stop; else error 5)
//
// Framing and the typed-error envelope are the shared net/wire.h codec
// (the distributed worker protocol in dist/protocol.h speaks the same
// layer). Error codes: 1 unknown-tag, 2 oversized, 3 malformed,
// 4 unavailable, 5 forbidden. Oversized frames additionally close the
// connection (the declared length cannot be trusted enough to
// resynchronize).
//
// Threading: the server runs one background thread; every hub access goes
// through the lock-free snapshot/poll read side, so attaching a server to
// a running study perturbs nothing deterministic
// (tests/introspect_test.cpp pins byte-identical exports with a polling
// client attached at scan_threads 1/2/8).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>

#include "net/wire.h"
#include "obs/introspect.h"
#include "util/bytes.h"

namespace ofh::core {

enum class StatusRequest : std::uint8_t {
  kStatus = 1,
  kProgress = 2,
  kMetrics = 3,
  kPhaseMetrics = 4,
  kDegradation = 5,
  kTraceStats = 6,
  kStop = 7,
};

// The status protocol's error envelope is the shared wire-layer one; these
// aliases keep the status endpoint's historical spelling working.
using StatusErrorCode = net::WireError;
std::string_view status_error_name(StatusErrorCode code);

inline constexpr std::uint8_t kStatusResponseBit = net::kWireResponseBit;
inline constexpr std::uint8_t kStatusErrorTag = net::kWireErrorTag;
// Requests are tiny; anything longer is hostile or corrupt.
inline constexpr std::size_t kMaxStatusRequestBody = 64;
// Cap progress events per response frame; clients poll the cursor forward.
inline constexpr std::size_t kMaxProgressEventsPerFrame = 256;

// Everything the pure frame handler needs. `sampler` and the text blobs
// are optional; absent pieces answer with error kUnavailable.
struct StatusContext {
  const obs::IntrospectionHub* hub = nullptr;
  obs::ProgressSampler* sampler = nullptr;
  bool allow_stop = false;
  bool stop_requested = false;  // set by a permitted stop request
};

// Handles one request body (frame minus the length prefix) and returns the
// response body. Pure: no sockets, no globals beyond the hub/registries the
// context points at — unit tests drive hostile frames straight through it.
util::Bytes handle_status_frame(std::span<const std::uint8_t> body,
                                StatusContext& context);

// Convenience for clients/tests: wraps a body in its u32 length prefix.
util::Bytes frame_status_message(std::span<const std::uint8_t> body);

class StatusService {
 public:
  struct Options {
    std::string unix_path;       // empty = no unix-domain listener
    bool tcp = false;            // listen on 127.0.0.1
    std::uint16_t tcp_port = 0;  // 0 = ephemeral (see tcp_port())
    bool allow_stop = false;     // honor the stop request
    int tick_ms = 100;           // poll timeout / sampler cadence
  };

  StatusService(const obs::IntrospectionHub& hub, Options options);
  ~StatusService();
  StatusService(const StatusService&) = delete;
  StatusService& operator=(const StatusService&) = delete;

  // Binds the listeners and starts the serving thread. Returns false (and
  // sets error()) when no listener could be bound.
  bool start();
  // Idempotent; joins the serving thread.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& error() const { return error_; }
  // Actual TCP port after an ephemeral bind (0 when TCP is off).
  std::uint16_t tcp_port() const { return tcp_port_; }
  // True once a permitted stop request arrived over the wire.
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }
  obs::ProgressSampler& sampler() { return sampler_; }

 private:
  void loop();
  void close_listeners();

  const obs::IntrospectionHub* hub_;
  Options options_;
  obs::ProgressSampler sampler_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: stop() wakes the poll loop
  std::uint16_t tcp_port_ = 0;
  std::string error_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace ofh::core
