// The study orchestrator: reproduces the paper's end-to-end methodology on
// the simulated Internet —
//   phase 1  setup_internet(): population, wild honeypots, telescope, intel
//   phase 2  run_scan(): six ZMap-style sweeps + banner classification +
//            honeypot fingerprint filtering
//   phase 3  run_datasets(): Project-Sonar/Shodan snapshots + correlation
//   phase 4  run_attack_month(): honeynet deployment + attacker fleet +
//            telescope capture for the configured duration
//   phase 5  correlate(): the §5.3 intersection of misconfigured devices
//            with honeypot/telescope attack sources
// Phases are independent where the paper's are: a bench that only needs
// Table 4 can stop after run_scan().
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "attackers/fleet.h"
#include "classify/device_tagger.h"
#include "classify/fingerprint.h"
#include "classify/misconfig_rules.h"
#include "core/analysis.h"
#include "datasets/open_datasets.h"
#include "devices/population.h"
#include "honeynet/deployments.h"
#include "intel/geo.h"
#include "intel/threat_intel.h"
#include "net/fabric.h"
#include "obs/introspect.h"
#include "scanner/scan_db.h"
#include "sim/simulation.h"
#include "telescope/rsdos.h"
#include "telescope/telescope.h"

namespace ofh::core {

struct StudyConfig {
  std::uint64_t seed = 42;
  // Population scale relative to the paper's 14.4M exposed hosts.
  double population_scale = 1.0 / 2'048;
  // Honeypot-side attack volume scale relative to Table 7's 200,209 events.
  double attack_scale = 1.0 / 32;
  sim::Duration attack_duration = sim::days(30);
  // Scan engine tuning.
  std::uint32_t scan_batch = 4'096;
  // Worker threads for the scan phase. Each protocol sweep runs as an
  // independent shard on a private replica of the simulated Internet and
  // results are merged by (time, shard, seq), so the output is
  // byte-identical for every value here. 1 = run shards inline (the serial
  // reference), 0 = one worker per hardware thread.
  unsigned scan_threads = 1;
  // Distributed execution (dist/coordinator.h). 0 = in-process shards on
  // scan_threads workers. N > 0 = offer the shard batch to the installed
  // scan-shard dispatcher (core/scan_shard.h), which runs it on N worker
  // processes; with no dispatcher installed (or the dispatcher declining)
  // the study degrades gracefully to the in-process path. Output is
  // byte-identical either way — jobs are pure functions of (seed, shard)
  // and merge order stays (time, shard, seq).
  unsigned scan_workers = 0;
  // Optional unix-socket path a coordinator listens on for external
  // ofh-worker processes (empty = socketpair-forked workers only).
  // Deliberately NOT exposed to the scenario language: fuzzed scenario
  // files must never pick filesystem paths to bind.
  std::string worker_endpoint;
  // Whether the fingerprint filter runs (off = the poisoning ablation).
  bool filter_honeypots = true;
  // Post-listing attack multiplier (1.0 disables the Figure 8 uptrend).
  double listing_boost = 1.6;
  // Telescope darknet; defaults to 44.0.0.0/8 (reserved by the population).
  util::Cidr telescope_range =
      util::Cidr(util::Ipv4Addr(44, 0, 0, 0), 8);
  // Chaos engineering (net/faults.h). The schedule is installed on the main
  // fabric and on every scan-shard replica, so faults replay identically
  // for every scan_threads value. The empty default leaves the fabric
  // untouched and every golden byte-identical.
  net::FaultSchedule fault_schedule;
  // Per-port scan probe attempts (scanner retry/backoff; 1 = no retries).
  std::uint32_t scan_attempts = 1;
  // Telnet attack-session SYN retries (attackers::FleetConfig).
  int session_connect_attempts = 1;
  // Telescope background-radiation scaling, forwarded to FleetConfig
  // (attackers/fleet.h). rate scales Table 8's packets/day (1.0 = the
  // paper's full 2.7e9 Telnet packets/day), source scales the unique-IP
  // pools behind them. The defaults match FleetConfig's and leave every
  // golden byte-identical; bench/perf_scale raises them toward 1.0 to
  // exercise the flow-level fast path at paper volume.
  double telescope_rate_scale = 1.0 / 4'000'000;
  double telescope_source_scale = 1.0 / 40'000;
  // Fraction of a phase's sent packets the schedule may perturb before
  // degradation_report() marks the phase OVER budget.
  double fault_budget = 0.25;
  // Attacker-group toggles forwarded to FleetConfig (attackers/fleet.h):
  // scenario files switch groups off to run single-pipeline studies
  // (Mirai-only outbreak, telescope-only vantage point, ...).
  attackers::Roster roster;

  // First constraint this config violates, or nullopt when the config is
  // runnable. The scenario parser (core/scenario.h) surfaces violations as
  // typed errors with file:line provenance; Study's constructor asserts
  // validity in debug builds and substitutes clamped() in release builds,
  // so hostile values can never reach the pipeline (same idiom as
  // Fabric::set_loss_rate).
  std::optional<std::string> validate() const;
  // Nearest runnable config: every out-of-range knob moved to the closest
  // bound (NaN maps to the default-constructed value).
  StudyConfig clamped() const;
};

// Fault-free reference totals a chaos run is compared against
// (Study::baseline() from a clean run; degradation_report()).
struct DegradationBaseline {
  std::uint64_t responsive_hosts = 0;  // scan_db().unique_hosts_total()
  std::uint64_t findings = 0;          // surviving misconfig findings
  std::uint64_t attack_events = 0;     // honeynet event-log entries
  std::uint64_t flowtuples = 0;        // telescope packets captured
};

// Per-phase fabric traffic perturbed by fault injection.
struct PhaseFaultStats {
  std::string phase;
  std::uint64_t sent = 0;     // fabric.packets_sent delta over the phase
  std::uint64_t faulted = 0;  // fabric.packets_faulted delta
};

class Study {
 public:
  explicit Study(StudyConfig config);
  ~Study();
  Study(const Study&) = delete;
  Study& operator=(const Study&) = delete;

  // Phase 1: build and attach everything that exists before we measure.
  void setup_internet();
  // Phase 2: the six-protocol Internet-wide scan, classification and
  // honeypot filtering. Fills scan_db/findings/fingerprints. Sweeps run as
  // independent shards (config.scan_threads workers) and merge
  // deterministically; see DESIGN.md "Threading model".
  void run_scan();
  // Phase 3: open dataset snapshots.
  void run_datasets();
  // Phase 4: deploy honeypots, run the attacker fleet for the configured
  // duration while the telescope captures.
  void run_attack_month();
  // Phase 5: cross-experiment correlation.
  void correlate();

  // Runs all phases in order.
  void run_all();

  // --- accessors ---------------------------------------------------------
  const StudyConfig& config() const { return config_; }
  sim::Simulation& sim() { return sim_; }
  net::Fabric& fabric() { return *fabric_; }
  // Events processed by the scan shards' private simulations (the main
  // sim's events_processed() misses them); bench/perf_scale sums both for
  // its events/sec figure.
  std::uint64_t scan_events() const { return scan_events_; }
  devices::Population& population() { return *population_; }
  const scanner::ScanDb& scan_db() const { return scan_db_; }
  const std::vector<classify::MisconfigFinding>& findings() const {
    return findings_;  // after honeypot filtering (if enabled)
  }
  const std::vector<classify::MisconfigFinding>& unfiltered_findings() const {
    return unfiltered_findings_;
  }
  const classify::FingerprintResult& fingerprints() const {
    return fingerprints_;
  }
  const std::optional<datasets::DatasetSnapshot>& sonar() const {
    return sonar_;
  }
  const std::optional<datasets::DatasetSnapshot>& shodan() const {
    return shodan_;
  }
  std::size_t wild_honeypot_count() const { return wild_honeypots_.size(); }
  const honeynet::EventLog& attack_log() const { return attack_log_; }
  const honeynet::Deployment& deployment() const { return deployment_; }
  const telescope::Telescope& scope() const { return *telescope_; }
  const telescope::RsdosDetector& rsdos() const { return *rsdos_; }
  const attackers::Fleet& fleet() const { return *fleet_; }
  const intel::GeoDb& geo() const { return *geo_; }
  const intel::ReverseDns& rdns() const { return rdns_; }
  const intel::VirusTotalDb& virustotal() const { return virustotal_; }
  const intel::GreyNoiseDb& greynoise() const { return greynoise_; }
  const intel::CensysDb& censys() const { return censys_; }
  const InfectedCorrelation& infected() const { return infected_; }
  std::uint64_t censys_extra() const { return censys_extra_; }

  // rdns suffixes of all known scanning services (for classification).
  std::vector<std::string> scan_service_domains() const;

  // Start time of each protocol's sweep (Appendix Table 9: the paper's
  // scans ran across one week, one or two protocols per day).
  const std::map<proto::Protocol, sim::Time>& scan_dates() const {
    return scan_dates_;
  }

  // Scales a paper count to this study's population scale.
  std::uint64_t scaled_population(std::uint64_t paper) const;
  std::uint64_t scaled_attack(std::uint64_t paper) const;

  // --- observability ------------------------------------------------------
  // The Study owns the obs registry for its lifetime: the constructor
  // resets it (one Study at a time), each phase runs under a trace span,
  // and a Prometheus snapshot is captured at every phase boundary.
  // Deterministic exports carry Domain::kSim metrics only and are
  // byte-identical across scan_threads settings (tests/parallel_test.cpp).
  std::string metrics_prometheus() const;
  std::string metrics_csv() const;
  // Wall-clock profile: thread-pool scheduling metrics + span wall times.
  // Nondeterministic by nature; never compare this across runs.
  std::string metrics_profile() const;
  // (phase name, Prometheus export captured when the phase ended).
  const std::vector<std::pair<std::string, std::string>>& phase_metrics()
      const {
    return phase_metrics_;
  }
  // Live introspection hub: phases, sweep progress and sim-day advances
  // are published here as the study runs, so concurrent readers (the
  // status service, tools/ofh-top) can watch without perturbing anything
  // deterministic. Always active — publishing is a handful of relaxed
  // atomics per stride, and having it unconditionally on is what makes
  // "introspection attached vs not" trivially byte-identical.
  obs::IntrospectionHub& introspection() { return introspect_; }
  const obs::IntrospectionHub& introspection() const { return introspect_; }

  // Chrome trace-event JSON of this run: phase spans plus the merged
  // flight-recorder events, loadable in Perfetto / chrome://tracing.
  // Deterministic (sim-time only) and byte-identical across scan_threads.
  std::string trace_json() const;
  // Figure 9 analogue: per-source multistage attack chains reconstructed
  // from the trace session events, plus the §5.3 scan x honeynet x
  // telescope provenance join. Deterministic like trace_json().
  std::string attack_chains() const;

  // --- graceful degradation ----------------------------------------------
  // End-of-run totals for use as the fault-free reference of a later
  // chaos run. Capture after run_all() on a Study with an empty schedule.
  DegradationBaseline baseline() const;
  // Human-readable chaos summary: schedule shape, fabric packet
  // conservation, per-kind fault counts, scanner outcome accounting,
  // per-phase fault budgets, and (when a fault-free baseline is supplied)
  // retained fractions of the headline results. Deterministic: built only
  // from Domain::kSim metrics and study state, so it is byte-identical
  // across scan_threads values (tests/faults_test.cpp).
  std::string degradation_report(
      const DegradationBaseline* fault_free = nullptr) const;
  const std::vector<PhaseFaultStats>& phase_fault_stats() const {
    return phase_fault_stats_;
  }

 private:
  StudyConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<devices::Population> population_;
  std::vector<std::unique_ptr<honeynet::WildHoneypot>> wild_honeypots_;
  std::unique_ptr<telescope::Telescope> telescope_;
  std::unique_ptr<telescope::RsdosDetector> rsdos_;
  std::unique_ptr<intel::GeoDb> geo_;
  intel::ReverseDns rdns_;
  intel::VirusTotalDb virustotal_;
  intel::GreyNoiseDb greynoise_;
  intel::CensysDb censys_;

  scanner::ScanDb scan_db_;
  std::uint64_t scan_events_ = 0;
  std::map<proto::Protocol, sim::Time> scan_dates_;
  std::vector<classify::MisconfigFinding> findings_;
  std::vector<classify::MisconfigFinding> unfiltered_findings_;
  classify::FingerprintResult fingerprints_;

  std::optional<datasets::DatasetSnapshot> sonar_;
  std::optional<datasets::DatasetSnapshot> shodan_;

  honeynet::EventLog attack_log_;
  honeynet::Deployment deployment_;
  std::unique_ptr<attackers::Fleet> fleet_;

  InfectedCorrelation infected_;
  std::uint64_t censys_extra_ = 0;

  std::vector<std::pair<std::string, std::string>> phase_metrics_;
  std::vector<PhaseFaultStats> phase_fault_stats_;
  obs::IntrospectionHub introspect_;
};

}  // namespace ofh::core
