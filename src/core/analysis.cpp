#include "core/analysis.h"

#include <algorithm>

#include "util/strings.h"

namespace ofh::core {

SourceClass classify_source(util::Ipv4Addr source,
                            const intel::ReverseDns& rdns,
                            const std::vector<std::string>& service_domains) {
  const auto domain = rdns.lookup(source);
  if (domain) {
    for (const auto& suffix : service_domains) {
      if (domain->size() >= suffix.size() &&
          domain->compare(domain->size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
        return SourceClass::kScanningService;
      }
    }
  }
  return SourceClass::kUnknown;  // refined by behaviour in callers
}

std::map<std::string, SourceBreakdown> classify_honeypot_sources(
    const honeynet::EventLog& log, const intel::ReverseDns& rdns,
    const std::vector<std::string>& service_domains) {
  // source -> (set of honeypots, saw malicious action?)
  struct Info {
    std::set<std::string> honeypots;
    bool malicious = false;
  };
  std::map<std::uint32_t, Info> sources;
  for (const auto& event : log.events()) {
    auto& info = sources[event.source.value()];
    info.honeypots.insert(event.honeypot);
    if (event.type != honeynet::AttackType::kScan &&
        event.type != honeynet::AttackType::kDiscovery) {
      info.malicious = true;
    }
  }

  std::map<std::string, SourceBreakdown> out;
  for (const auto& [value, info] : sources) {
    const auto klass =
        classify_source(util::Ipv4Addr(value), rdns, service_domains);
    for (const auto& honeypot : info.honeypots) {
      auto& breakdown = out[honeypot];
      if (klass == SourceClass::kScanningService) {
        ++breakdown.scanning_service;
      } else if (info.malicious) {
        ++breakdown.malicious;
      } else {
        ++breakdown.unknown;
      }
    }
  }
  return out;
}

std::vector<MultistageChain> detect_multistage(
    const honeynet::EventLog& log, const intel::ReverseDns& rdns,
    const std::vector<std::string>& service_domains) {
  // source -> protocol -> first-seen time
  std::map<std::uint32_t, std::map<proto::Protocol, sim::Time>> first_seen;
  for (const auto& event : log.events()) {
    auto& protos = first_seen[event.source.value()];
    const auto it = protos.find(event.protocol);
    if (it == protos.end() || event.when < it->second) {
      protos[event.protocol] = event.when;
    }
  }

  std::vector<MultistageChain> chains;
  for (const auto& [value, protos] : first_seen) {
    if (protos.size() < 2) continue;
    const util::Ipv4Addr source(value);
    if (classify_source(source, rdns, service_domains) ==
        SourceClass::kScanningService) {
      continue;  // periodic scanners probe everything; not multistage attacks
    }
    std::vector<std::pair<sim::Time, proto::Protocol>> ordered;
    for (const auto& [protocol, when] : protos) {
      ordered.push_back({when, protocol});
    }
    std::sort(ordered.begin(), ordered.end());
    MultistageChain chain;
    chain.source = source;
    for (const auto& [when, protocol] : ordered) {
      chain.stages.push_back(protocol);
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

std::vector<util::Counter> multistage_stage_histogram(
    const std::vector<MultistageChain>& chains) {
  std::vector<util::Counter> stages;
  for (const auto& chain : chains) {
    for (std::size_t i = 0; i < chain.stages.size(); ++i) {
      if (stages.size() <= i) stages.emplace_back();
      stages[i].add(std::string(proto::protocol_name(chain.stages[i])));
    }
  }
  return stages;
}

InfectedCorrelation correlate_infected(
    const std::vector<classify::MisconfigFinding>& findings,
    const honeynet::EventLog& log, const telescope::Telescope& telescope) {
  std::set<std::uint32_t> misconfigured;
  for (const auto& finding : findings) {
    misconfigured.insert(finding.host.value());
  }

  std::set<std::uint32_t> honeypot_sources;
  for (const auto& event : log.events()) {
    honeypot_sources.insert(event.source.value());
  }
  std::set<std::uint32_t> telescope_sources;
  for (const auto source : telescope.all_sources()) {
    telescope_sources.insert(source.value());
  }

  InfectedCorrelation result;
  for (const auto host : misconfigured) {
    const bool hp = honeypot_sources.count(host) != 0;
    const bool tel = telescope_sources.count(host) != 0;
    if (hp && tel) {
      result.both.insert(host);
    } else if (hp) {
      result.honeypot_only.insert(host);
    } else if (tel) {
      result.telescope_only.insert(host);
    }
  }
  return result;
}

std::uint64_t censys_extra_iot(
    const honeynet::EventLog& log, const telescope::Telescope& telescope,
    const std::set<std::uint32_t>& already_correlated,
    const intel::CensysDb& censys) {
  std::set<std::uint32_t> sources;
  for (const auto& event : log.events()) sources.insert(event.source.value());
  for (const auto source : telescope.all_sources()) {
    sources.insert(source.value());
  }
  std::uint64_t extra = 0;
  for (const auto value : sources) {
    if (already_correlated.count(value) != 0) continue;
    if (censys.iot_tag(util::Ipv4Addr(value))) ++extra;
  }
  return extra;
}

GreyNoiseComparison compare_with_greynoise(
    const std::vector<util::Ipv4Addr>& scanning_sources,
    const intel::GreyNoiseDb& greynoise) {
  GreyNoiseComparison comparison;
  comparison.ours = scanning_sources.size();
  for (const auto source : scanning_sources) {
    if (greynoise.lookup(source) == intel::GreyNoiseClass::kBenign) {
      ++comparison.greynoise;
    } else {
      ++comparison.missed;
    }
  }
  return comparison;
}

std::map<std::string, double> virustotal_flag_rates(
    const std::map<std::string, std::vector<util::Ipv4Addr>>& by_protocol,
    const intel::VirusTotalDb& virustotal, const std::string& label_suffix) {
  std::map<std::string, double> rates;
  for (const auto& [protocol, sources] : by_protocol) {
    if (sources.empty()) continue;
    std::uint64_t flagged = 0;
    for (const auto source : sources) {
      if (virustotal.is_malicious(source)) ++flagged;
    }
    rates[protocol + " " + label_suffix] =
        static_cast<double>(flagged) / static_cast<double>(sources.size());
  }
  return rates;
}

}  // namespace ofh::core
