#include "core/scenario.h"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "core/reports.h"
#include "devices/population.h"
#include "obs/introspect.h"
#include "net/faults.h"
#include "util/strings.h"

namespace ofh::core {
namespace {

// Hostile-input ceilings: the fuzzer (tools/scenario_fuzz) feeds this
// parser corrupted files, so every dimension an attacker controls is
// bounded before any work happens on it.
constexpr std::size_t kMaxFileBytes = 1u << 20;  // 1 MiB
constexpr std::size_t kMaxLines = 10'000;
constexpr std::size_t kMaxLineBytes = 4'096;
constexpr std::size_t kMaxPatternBytes = 512;
constexpr std::size_t kMaxExpectations = 1'000;
constexpr double kMaxDays = 400.0;  // window/duration bound before u64 cast

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

std::optional<std::uint64_t> parse_unsigned(std::string_view token) {
  std::uint64_t value = 0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

// Plain decimal ("0.05", "42") or a fraction ("1/8192"). Rejects trailing
// garbage, empty operands and zero denominators; inf/nan parse but are
// rejected downstream by the NaN-safe range checks.
std::optional<double> parse_number(std::string_view token) {
  const auto slash = token.find('/');
  if (slash != std::string_view::npos) {
    const auto numerator = parse_number(token.substr(0, slash));
    const auto denominator = parse_number(token.substr(slash + 1));
    if (!numerator || !denominator || *denominator == 0.0) {
      return std::nullopt;
    }
    return *numerator / *denominator;
  }
  // strtod needs a terminated buffer; tokens are short (kMaxLineBytes).
  const std::string buffer(token);
  char* parse_end = nullptr;
  const double value = std::strtod(buffer.c_str(), &parse_end);
  if (parse_end != buffer.c_str() + buffer.size() || buffer.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> parse_on_off(std::string_view token) {
  if (token == "on") return true;
  if (token == "off") return false;
  return std::nullopt;
}

// Days -> sim::Time, guarded so a hostile value can never reach the
// double->u64 cast out of range (that cast is UB, and the fuzzer runs under
// UBSan precisely to prove it cannot happen).
std::optional<sim::Time> parse_days(std::string_view token) {
  const auto value = parse_number(token);
  if (!value || !(*value >= 0.0) || *value > kMaxDays) return std::nullopt;
  return static_cast<sim::Time>(*value * static_cast<double>(sim::days(1)));
}

bool known_report(const std::string& name) {
  for (const auto& known : scenario_report_names()) {
    if (known == name) return true;
  }
  return false;
}

// Directive keys that take exactly one value; setting one twice is a
// kDuplicateDirective (the second value silently winning is how config
// drift hides in hand-edited files).
bool single_valued(std::string_view key) {
  static const std::set<std::string, std::less<>> kScalars = {
      "scenario",        "seed",
      "scale",           "attack-scale",
      "duration-days",   "scan-threads",
      "scan-workers",    "scan-batch",
      "scan-attempts",
      "session-attempts", "filter-honeypots",
      "listing-boost",   "telescope-range",
      "telescope-rate-scale", "telescope-source-scale",
      "fault-budget",
      "fault uniform-loss", "fault duplicate", "fault reorder",
      "fault burst",     "fault chaos",
      "roster scan-services", "roster infected", "roster external",
      "roster dos",      "roster multistage", "roster background"};
  return kScalars.find(key) != kScalars.end();
}

struct Parser {
  std::string_view file;
  ScenarioError* error;
  Scenario scenario;
  std::set<std::string> seen;  // single-valued directives already used
  std::size_t expectation_count = 0;
  bool any_directive = false;

  bool fail(int line, ScenarioErrorCode code, std::string message) {
    if (error != nullptr) {
      *error = ScenarioError{std::string(file), line, code,
                             std::move(message)};
    }
    return false;
  }

  bool check_duplicate(int line, const std::string& key) {
    if (!single_valued(key)) return true;
    if (!seen.insert(key).second) {
      return fail(line, ScenarioErrorCode::kDuplicateDirective,
                  "'" + key + "' already set");
    }
    return true;
  }

  // Applies `apply` to a scratch copy of the config, then re-validates: the
  // parser reuses StudyConfig::validate verbatim, so the scenario language
  // and the programmatic API reject exactly the same values — here with
  // file:line provenance attached.
  template <typename Fn>
  bool apply_checked(int line, const std::string& key, Fn apply) {
    StudyConfig candidate = scenario.config;
    apply(candidate);
    if (const auto violation = candidate.validate()) {
      return fail(line, ScenarioErrorCode::kOutOfRange,
                  key + ": " + *violation);
    }
    scenario.config = candidate;
    return true;
  }

  bool handle_fault(int line, const std::vector<std::string_view>& tokens);
  bool handle_roster(int line, const std::vector<std::string_view>& tokens);
  bool handle_directive(int line, std::string_view text);
  bool handle_expectation(int line, std::string_view text);
  bool finish();
};

bool Parser::handle_fault(int line,
                          const std::vector<std::string_view>& tokens) {
  // tokens[0] == "fault"; tokens[1] is the kind.
  if (tokens.size() < 2) {
    return fail(line, ScenarioErrorCode::kBadValue,
                "fault needs a kind (uniform-loss, duplicate, reorder, "
                "burst, flap, partition, spike, refusal, crash, chaos)");
  }
  const std::string kind(tokens[1]);
  const std::string key = "fault " + kind;
  if (!check_duplicate(line, key)) return false;
  auto& schedule = scenario.config.fault_schedule;

  const auto need = [&](std::size_t count) {
    if (tokens.size() - 2 == count) return true;
    fail(line, ScenarioErrorCode::kBadValue,
         "fault " + kind + " takes " + std::to_string(count) + " operands");
    return false;
  };
  const auto rate_of = [&](std::string_view token,
                           double& out) {
    const auto value = parse_number(token);
    if (!value) {
      return fail(line, ScenarioErrorCode::kBadValue,
                  "fault " + kind + ": '" + std::string(token) +
                      "' is not a number");
    }
    out = *value;
    return true;
  };
  if (kind == "uniform-loss") {
    if (!need(1)) return false;
    double rate = 0.0;
    if (!rate_of(tokens[2], rate)) return false;
    return apply_checked(line, key, [rate](StudyConfig& c) {
      c.fault_schedule.uniform_loss = rate;
    });
  }
  if (kind == "duplicate") {
    if (!need(1)) return false;
    double rate = 0.0;
    if (!rate_of(tokens[2], rate)) return false;
    return apply_checked(line, key, [rate](StudyConfig& c) {
      c.fault_schedule.duplicate_rate = rate;
    });
  }
  if (kind == "reorder") {
    if (tokens.size() != 3 && tokens.size() != 4) {
      return fail(line, ScenarioErrorCode::kBadValue,
                  "fault reorder takes <rate> [delay-ms]");
    }
    double rate = 0.0;
    if (!rate_of(tokens[2], rate)) return false;
    sim::Duration delay = schedule.reorder_delay;
    if (tokens.size() == 4) {
      const auto ms = parse_unsigned(tokens[3]);
      if (!ms || *ms > 1'000'000) {
        return fail(line, ScenarioErrorCode::kBadValue,
                    "fault reorder: delay-ms must be an integer <= 1000000");
      }
      delay = sim::msec(*ms);
    }
    return apply_checked(line, key, [rate, delay](StudyConfig& c) {
      c.fault_schedule.reorder_rate = rate;
      c.fault_schedule.reorder_delay = delay;
    });
  }
  if (kind == "burst") {
    if (tokens.size() != 5 && tokens.size() != 6) {
      return fail(line, ScenarioErrorCode::kBadValue,
                  "fault burst takes <p_enter> <p_exit> <loss_bad> "
                  "[slot-ms]");
    }
    net::GilbertElliott burst;
    burst.enabled = true;
    burst.loss_good = 0.0;
    if (!rate_of(tokens[2], burst.p_enter) ||
        !rate_of(tokens[3], burst.p_exit) ||
        !rate_of(tokens[4], burst.loss_bad)) {
      return false;
    }
    if (tokens.size() == 6) {
      const auto ms = parse_unsigned(tokens[5]);
      if (!ms || *ms == 0 || *ms > 1'000'000) {
        return fail(line, ScenarioErrorCode::kBadValue,
                    "fault burst: slot-ms must be in [1, 1000000]");
      }
      burst.slot = sim::msec(*ms);
    }
    return apply_checked(line, key, [burst](StudyConfig& c) {
      c.fault_schedule.burst = burst;
    });
  }
  if (kind == "chaos") {
    if (!need(1)) return false;
    const auto days = parse_number(tokens[2]);
    if (!days || !(*days > 0.0) || *days > kMaxDays) {
      return fail(line, ScenarioErrorCode::kOutOfRange,
                  "fault chaos: end-day must be in (0, 400]");
    }
    scenario.chaos_end_days = *days;
    return true;
  }

  // The windowed kinds: flap/refusal/crash <cidr> <start> <end>,
  // partition <cidr> <cidr> <start> <end>, spike <cidr> <start> <end> <ms>.
  net::FaultWindow window;
  std::size_t cursor = 2;
  const auto cidr_of = [&](util::Cidr& out) {
    if (cursor >= tokens.size()) return false;
    const auto parsed = util::Cidr::parse(tokens[cursor]);
    if (!parsed) return false;
    out = *parsed;
    ++cursor;
    return true;
  };
  const auto day_of = [&](sim::Time& out) {
    if (cursor >= tokens.size()) return false;
    const auto parsed = parse_days(tokens[cursor]);
    if (!parsed) return false;
    out = *parsed;
    ++cursor;
    return true;
  };

  bool shape_ok = false;
  if (kind == "flap" || kind == "refusal" || kind == "crash") {
    window.kind = kind == "flap"      ? net::FaultKind::kLinkFlap
                  : kind == "refusal" ? net::FaultKind::kRefusal
                                      : net::FaultKind::kCrash;
    shape_ok = cidr_of(window.scope) && day_of(window.start) &&
               day_of(window.end) && cursor == tokens.size();
  } else if (kind == "partition") {
    window.kind = net::FaultKind::kPartition;
    shape_ok = cidr_of(window.scope) && cidr_of(window.peer) &&
               day_of(window.start) && day_of(window.end) &&
               cursor == tokens.size();
  } else if (kind == "spike") {
    window.kind = net::FaultKind::kLatencySpike;
    shape_ok = cidr_of(window.scope) && day_of(window.start) &&
               day_of(window.end);
    if (shape_ok) {
      const auto ms = cursor < tokens.size() ? parse_unsigned(tokens[cursor])
                                             : std::nullopt;
      ++cursor;
      if (!ms || *ms > 1'000'000 || cursor != tokens.size()) {
        shape_ok = false;
      } else {
        window.magnitude = sim::msec(*ms);
      }
    }
  } else {
    return fail(line, ScenarioErrorCode::kUnknownDirective,
                "unknown fault kind '" + kind + "'");
  }
  if (!shape_ok) {
    return fail(line, ScenarioErrorCode::kBadValue,
                "fault " + kind + ": malformed operands (cidr/day bounds)");
  }
  return apply_checked(line, key, [window](StudyConfig& c) {
    c.fault_schedule.windows.push_back(window);
  });
}

bool Parser::handle_roster(int line,
                           const std::vector<std::string_view>& tokens) {
  if (tokens.size() != 3) {
    return fail(line, ScenarioErrorCode::kBadValue,
                "roster takes <group> on|off");
  }
  const std::string group(tokens[1]);
  const auto value = parse_on_off(tokens[2]);
  if (!value) {
    return fail(line, ScenarioErrorCode::kBadValue,
                "roster " + group + ": expected on or off");
  }
  if (!check_duplicate(line, "roster " + group)) return false;
  auto& roster = scenario.config.roster;
  if (group == "scan-services") {
    roster.scan_services = *value;
  } else if (group == "infected") {
    roster.infected = *value;
  } else if (group == "external") {
    roster.external = *value;
  } else if (group == "dos") {
    roster.dos = *value;
  } else if (group == "multistage") {
    roster.multistage = *value;
  } else if (group == "background") {
    roster.background = *value;
  } else {
    return fail(line, ScenarioErrorCode::kUnknownDirective,
                "unknown roster group '" + group +
                    "' (scan-services, infected, external, dos, "
                    "multistage, background)");
  }
  return true;
}

bool Parser::handle_directive(int line, std::string_view text) {
  const auto tokens = tokenize(text);
  if (tokens.empty()) return true;  // caller already skipped blanks
  const std::string name(tokens[0]);
  any_directive = true;

  if (name == "fault") return handle_fault(line, tokens);
  if (name == "roster") return handle_roster(line, tokens);

  if (name == "report") {
    if (tokens.size() != 2) {
      return fail(line, ScenarioErrorCode::kBadValue,
                  "report takes exactly one name");
    }
    const std::string report_name(tokens[1]);
    if (!known_report(report_name)) {
      return fail(line, ScenarioErrorCode::kUnknownReport,
                  "unknown report '" + report_name + "'");
    }
    if (report_name == "degradation-vs-baseline") {
      scenario.wants_baseline = true;
    }
    scenario.reports.push_back(ScenarioReport{line, report_name, {}});
    return true;
  }

  if (name == "scenario") {
    if (!check_duplicate(line, name)) return false;
    if (tokens.size() < 2) {
      return fail(line, ScenarioErrorCode::kBadValue,
                  "scenario takes a title");
    }
    // tokens are views into `text`, so pointer arithmetic recovers the
    // title's offset — everything from the second token onward, verbatim.
    const auto title_start =
        static_cast<std::size_t>(tokens[1].data() - text.data());
    scenario.title = std::string(text.substr(title_start));
    return true;
  }

  // Everything below is a single-valued StudyConfig knob.
  if (!check_duplicate(line, name)) return false;
  const auto one_operand = [&]() -> std::optional<std::string_view> {
    if (tokens.size() != 2) {
      fail(line, ScenarioErrorCode::kBadValue,
           "'" + name + "' takes exactly one value");
      return std::nullopt;
    }
    return tokens[1];
  };
  const auto bad_value = [&](std::string_view token) {
    return fail(line, ScenarioErrorCode::kBadValue,
                "'" + name + "': cannot parse '" + std::string(token) + "'");
  };

  if (name == "seed") {
    const auto operand = one_operand();
    if (!operand) return false;
    const auto value = parse_unsigned(*operand);
    if (!value) return bad_value(*operand);
    scenario.config.seed = *value;
    return true;
  }
  if (name == "scale" || name == "attack-scale" ||
      name == "listing-boost" || name == "fault-budget" ||
      name == "telescope-rate-scale" || name == "telescope-source-scale") {
    const auto operand = one_operand();
    if (!operand) return false;
    const auto value = parse_number(*operand);
    if (!value) return bad_value(*operand);
    return apply_checked(line, name, [&name, v = *value](StudyConfig& c) {
      if (name == "scale") c.population_scale = v;
      if (name == "attack-scale") c.attack_scale = v;
      if (name == "listing-boost") c.listing_boost = v;
      if (name == "fault-budget") c.fault_budget = v;
      if (name == "telescope-rate-scale") c.telescope_rate_scale = v;
      if (name == "telescope-source-scale") c.telescope_source_scale = v;
    });
  }
  if (name == "duration-days") {
    const auto operand = one_operand();
    if (!operand) return false;
    const auto value = parse_days(*operand);
    if (!value) {
      return fail(line, ScenarioErrorCode::kOutOfRange,
                  "duration-days must be a number of days in [0, 400]");
    }
    return apply_checked(line, name, [v = *value](StudyConfig& c) {
      c.attack_duration = v;
    });
  }
  if (name == "scan-threads" || name == "scan-workers" ||
      name == "scan-batch" || name == "scan-attempts" ||
      name == "session-attempts") {
    const auto operand = one_operand();
    if (!operand) return false;
    const auto value = parse_unsigned(*operand);
    if (!value || *value > 1'000'000'000) return bad_value(*operand);
    return apply_checked(line, name, [&name, v = *value](StudyConfig& c) {
      if (name == "scan-threads") c.scan_threads = static_cast<unsigned>(v);
      // scan-workers only selects the execution backend (dispatcher vs
      // in-process): a fuzzed scenario file can request worker processes,
      // but with no dispatcher installed (scenario_fuzz never installs
      // one) the study degrades to the in-process path — and the reports
      // are byte-identical either way. worker_endpoint stays out of the
      // language entirely: hostile files must never pick bind paths.
      if (name == "scan-workers") c.scan_workers = static_cast<unsigned>(v);
      if (name == "scan-batch") c.scan_batch = static_cast<std::uint32_t>(v);
      if (name == "scan-attempts") {
        c.scan_attempts = static_cast<std::uint32_t>(v);
      }
      if (name == "session-attempts") {
        c.session_connect_attempts = static_cast<int>(v);
      }
    });
  }
  if (name == "filter-honeypots") {
    const auto operand = one_operand();
    if (!operand) return false;
    const auto value = parse_on_off(*operand);
    if (!value) return bad_value(*operand);
    scenario.config.filter_honeypots = *value;
    return true;
  }
  if (name == "telescope-range") {
    const auto operand = one_operand();
    if (!operand) return false;
    const auto value = util::Cidr::parse(*operand);
    if (!value) return bad_value(*operand);
    return apply_checked(line, name, [v = *value](StudyConfig& c) {
      c.telescope_range = v;
    });
  }

  return fail(line, ScenarioErrorCode::kUnknownDirective,
              "unknown directive '" + name + "'");
}

bool Parser::handle_expectation(int line, std::string_view text) {
  if (scenario.reports.empty()) {
    return fail(line, ScenarioErrorCode::kOrphanExpectation,
                "expectation before any report directive");
  }
  const std::string_view pattern = text.substr(1);
  if (pattern.size() > kMaxPatternBytes) {
    return fail(line, ScenarioErrorCode::kBadRegex,
                "pattern longer than " + std::to_string(kMaxPatternBytes) +
                    " bytes");
  }
  if (++expectation_count > kMaxExpectations) {
    return fail(line, ScenarioErrorCode::kBadRegex,
                "more than " + std::to_string(kMaxExpectations) +
                    " expectations");
  }
  ScenarioExpectation expectation;
  expectation.line = line;
  expectation.pattern = std::string(pattern);
  try {
    expectation.regex = std::regex(expectation.pattern,
                                   std::regex_constants::ECMAScript);
  } catch (const std::regex_error&) {
    return fail(line, ScenarioErrorCode::kBadRegex,
                "invalid regular expression");
  }
  scenario.reports.back().expectations.push_back(std::move(expectation));
  return true;
}

bool Parser::finish() {
  if (!any_directive) {
    return fail(1, ScenarioErrorCode::kSyntax,
                "empty scenario (no directives)");
  }
  return true;
}

}  // namespace

std::string_view scenario_error_code_name(ScenarioErrorCode code) {
  switch (code) {
    case ScenarioErrorCode::kIo: return "io-error";
    case ScenarioErrorCode::kSyntax: return "syntax-error";
    case ScenarioErrorCode::kUnknownDirective: return "unknown-directive";
    case ScenarioErrorCode::kDuplicateDirective: return "duplicate-directive";
    case ScenarioErrorCode::kBadValue: return "bad-value";
    case ScenarioErrorCode::kOutOfRange: return "out-of-range";
    case ScenarioErrorCode::kOrphanExpectation: return "orphan-expectation";
    case ScenarioErrorCode::kBadRegex: return "bad-regex";
    case ScenarioErrorCode::kUnknownReport: return "unknown-report";
  }
  return "unknown";
}

std::string ScenarioError::to_string() const {
  std::string out = file;
  out += ":" + std::to_string(line) + ": ";
  out += scenario_error_code_name(code);
  out += ": " + message;
  return out;
}

const std::vector<std::string>& scenario_report_names() {
  static const std::vector<std::string> kNames = {
      "table4",  "table5", "table6", "table7", "table8", "table10",
      "fig2",    "fig3",   "fig4",   "fig5",   "fig6",   "fig7",
      "fig8",    "fig9",   "correlation", "credentials", "chains",
      "summary", "degradation", "degradation-vs-baseline",
      "progress-summary"};
  return kNames;
}

std::optional<Scenario> parse_scenario_text(std::string_view text,
                                            std::string_view file,
                                            ScenarioError* error) {
  Parser parser;
  parser.file = file;
  parser.error = error;
  parser.scenario.file = std::string(file);

  if (text.size() > kMaxFileBytes) {
    parser.fail(0, ScenarioErrorCode::kIo, "file larger than 1 MiB");
    return std::nullopt;
  }

  int line_number = 0;
  std::size_t offset = 0;
  while (offset <= text.size()) {
    if (line_number >= static_cast<int>(kMaxLines)) {
      parser.fail(line_number, ScenarioErrorCode::kSyntax,
                  "more than 10000 lines");
      return std::nullopt;
    }
    const auto newline = text.find('\n', offset);
    std::string_view line =
        newline == std::string_view::npos
            ? text.substr(offset)
            : text.substr(offset, newline - offset);
    // The loop must terminate even for a final line without '\n'.
    const bool last = newline == std::string_view::npos;
    offset = last ? text.size() + 1 : newline + 1;
    ++line_number;
    if (last && line.empty()) break;

    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.size() > kMaxLineBytes) {
      parser.fail(line_number, ScenarioErrorCode::kSyntax,
                  "line longer than 4096 bytes");
      return std::nullopt;
    }
    if (!line.empty() && line.front() == '#') {
      if (!parser.handle_expectation(line_number, line)) return std::nullopt;
      continue;
    }
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.substr(0, 2) == "//") continue;
    if (!parser.handle_directive(line_number, trimmed)) return std::nullopt;
  }
  if (!parser.finish()) return std::nullopt;
  return std::move(parser.scenario);
}

std::optional<Scenario> parse_scenario_file(const std::string& path,
                                            ScenarioError* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (error != nullptr) {
      *error = ScenarioError{path, 0, ScenarioErrorCode::kIo,
                             "cannot open file"};
    }
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario_text(buffer.str(), path, error);
}

// ----------------------------------------------------------------- running

namespace {

// Renders one named report. `baseline` is non-null only when the scenario
// ran a fault-free twin (degradation-vs-baseline).
std::string render_report(Study& study, const std::string& name,
                          const DegradationBaseline* baseline) {
  if (name == "table4") return report_table4_exposed(study);
  if (name == "table5") return report_table5_misconfigured(study);
  if (name == "table6") return report_table6_honeypots(study);
  if (name == "table7") return report_table7_attacks(study);
  if (name == "table8") return report_table8_telescope(study);
  if (name == "table10") return report_table10_countries(study);
  if (name == "fig2") return report_fig2_device_types(study);
  if (name == "fig3") return report_fig3_scanning_services(study);
  if (name == "fig4") return report_fig4_attack_types(study);
  if (name == "fig5") return report_fig5_greynoise(study);
  if (name == "fig6") return report_fig6_virustotal(study);
  if (name == "fig7") return report_fig7_trends(study);
  if (name == "fig8") return report_fig8_daily(study);
  if (name == "fig9") return report_fig9_multistage(study);
  if (name == "correlation") return report_correlation(study);
  if (name == "credentials") return report_table12_credentials(study);
  if (name == "chains") return study.attack_chains();
  if (name == "degradation") return study.degradation_report();
  if (name == "degradation-vs-baseline") {
    return study.degradation_report(baseline);
  }
  if (name == "progress-summary") {
    // Deterministic introspection digest: final board state, per-kind
    // progress-event totals and folded sweep finals are all pure functions
    // of the study's event streams, so this report is corpus-pinnable at
    // every scan_threads value. Ring *contents* are deliberately absent —
    // their interleaving is schedule-dependent.
    const auto num = [](std::uint64_t v) { return std::to_string(v); };
    const auto snap = study.introspection().snapshot(false);
    std::string out = "progress summary\n";
    out += "board: epoch=" + num(snap.epoch) +
           " phase=" + num(snap.phase) +
           " sim_day=" + num(snap.sim_day) + "\n";
    out += "events: published=" + num(snap.events_published);
    for (std::size_t i = 0; i < obs::kProgressKindCount; ++i) {
      out += " ";
      out += obs::progress_kind_name(static_cast<obs::ProgressKind>(i));
      out += "=" + num(snap.kind_counts[i]);
    }
    out += "\n";
    for (const auto& sweep : snap.sweeps) {
      out += "sweep " + sweep.name + ": done=" + num(sweep.done) +
             " total=" + num(sweep.total) + "\n";
    }
    out += "sweeps: done=" + num(snap.sweep_done) +
           " total=" + num(snap.sweep_total) + "\n";
    out += "trace: recorded=" + num(snap.trace_recorded) +
           " dropped=" + num(snap.trace_dropped) +
           " shards=" + num(snap.trace_shards.size()) + "\n";
    return out;
  }
  if (name == "summary") {
    const auto num = [](std::uint64_t v) { return std::to_string(v); };
    std::string out = "scenario summary\n";
    out += "population: devices=" + num(study.population().total_devices()) +
           " wild_honeypots=" + num(study.wild_honeypot_count()) + "\n";
    out += "scan: probes=" + num(study.scan_db().probes_sent()) +
           " responsive_hosts=" + num(study.scan_db().unique_hosts_total()) +
           " records=" + num(study.scan_db().size()) +
           " retries=" + num(study.scan_db().retries()) + "\n";
    out += "classify: findings=" + num(study.findings().size()) +
           " unfiltered=" + num(study.unfiltered_findings().size()) +
           " honeypot_hosts=" +
           num(study.fingerprints().honeypot_hosts.size()) + "\n";
    out += "attack: events=" + num(study.attack_log().size()) +
           " sessions=" + num(study.fleet().sessions_launched()) +
           " listings=" + num(study.fleet().listings().size()) +
           " multistage=" + num(study.fleet().multistage_attacker_count()) +
           "\n";
    out += "telescope: flowtuples=" + num(study.scope().total_packets()) +
           "\n";
    out += "correlation: both=" + num(study.infected().both.size()) +
           " honeypot_only=" + num(study.infected().honeypot_only.size()) +
           " telescope_only=" + num(study.infected().telescope_only.size()) +
           " censys_extra=" + num(study.censys_extra()) + "\n";
    return out;
  }
  return "unknown report: " + name + "\n";  // unreachable: parser validates
}

// `fault chaos` resolution: the canned schedule needs victim ranges, which
// only exist once the population is built. A throwaway replica (build() is
// pure in its spec) supplies them; explicitly parsed scalar knobs and
// windows layer on top of the canned plan.
net::FaultSchedule resolve_chaos(const Scenario& scenario) {
  const auto& config = scenario.config;
  devices::PopulationSpec spec;
  spec.seed = config.seed;
  spec.scale = config.population_scale;
  devices::Population population(spec);
  population.build();
  net::ChaosOptions options;
  options.ranges = population.prefixes();
  options.end = static_cast<sim::Time>(scenario.chaos_end_days *
                                       static_cast<double>(sim::days(1)));
  net::FaultSchedule merged = net::FaultSchedule::chaos(config.seed, options);

  const auto& parsed = config.fault_schedule;
  if (parsed.uniform_loss > 0.0) merged.uniform_loss = parsed.uniform_loss;
  if (parsed.duplicate_rate > 0.0) {
    merged.duplicate_rate = parsed.duplicate_rate;
  }
  if (parsed.reorder_rate > 0.0) {
    merged.reorder_rate = parsed.reorder_rate;
    merged.reorder_delay = parsed.reorder_delay;
  }
  if (parsed.burst.enabled) merged.burst = parsed.burst;
  merged.windows.insert(merged.windows.end(), parsed.windows.begin(),
                        parsed.windows.end());
  return merged;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t offset = 0;
  while (offset < text.size()) {
    const auto newline = text.find('\n', offset);
    if (newline == std::string::npos) {
      lines.push_back(text.substr(offset));
      break;
    }
    lines.push_back(text.substr(offset, newline - offset));
    offset = newline + 1;
  }
  return lines;
}

// regex_search wrapped so a pathological pattern (the fuzzer feeds them)
// degrades to "no match" instead of an exception escaping the library.
bool safe_search(const std::string& line, const std::regex& regex) {
  try {
    return std::regex_search(line, regex);
  } catch (const std::regex_error&) {
    return false;
  }
}

}  // namespace

ScenarioResult run_scenario(const Scenario& scenario,
                            const ScenarioRunOptions& options) {
  ScenarioResult result;
  StudyConfig config = scenario.config;
  if (scenario.chaos_end_days > 0.0) {
    config.fault_schedule = resolve_chaos(scenario);
  }

  std::vector<unsigned> sweep = options.thread_sweep;
  if (sweep.empty()) sweep.push_back(config.scan_threads);

  // The fault-free twin shares everything with the scenario except the
  // chaos knobs themselves — same seed, same scales, same roster — so
  // degradation-vs-baseline isolates exactly the schedule's effect.
  DegradationBaseline baseline;
  if (scenario.wants_baseline) {
    StudyConfig twin = config;
    twin.fault_schedule = net::FaultSchedule{};
    twin.scan_attempts = 1;
    twin.session_connect_attempts = 1;
    twin.scan_threads = sweep.front();
    Study study(twin);
    study.run_all();
    baseline = study.baseline();
  }

  std::vector<std::string> reference;  // report texts from sweep.front()
  for (std::size_t pass = 0; pass < sweep.size(); ++pass) {
    config.scan_threads = sweep[pass];
    Study study(config);
    study.run_all();
    std::vector<std::string> texts;
    texts.reserve(scenario.reports.size());
    for (const auto& block : scenario.reports) {
      texts.push_back(render_report(
          study, block.name,
          scenario.wants_baseline ? &baseline : nullptr));
    }
    if (pass == 0) {
      reference = texts;
      for (std::size_t i = 0; i < scenario.reports.size(); ++i) {
        result.reports.push_back(
            ScenarioReportOutput{scenario.reports[i].name, texts[i]});
      }
      continue;
    }
    for (std::size_t i = 0; i < texts.size(); ++i) {
      if (texts[i] == reference[i]) continue;
      // Name the first diverging line: determinism bugs are found by line,
      // not by diffing two blobs.
      const auto expected = split_lines(reference[i]);
      const auto actual = split_lines(texts[i]);
      std::size_t diff_line = 0;
      while (diff_line < expected.size() && diff_line < actual.size() &&
             expected[diff_line] == actual[diff_line]) {
        ++diff_line;
      }
      result.failures.push_back(
          scenario.file + ":" + std::to_string(scenario.reports[i].line) +
          ": report '" + scenario.reports[i].name +
          "' differs between scan_threads=" + std::to_string(sweep.front()) +
          " and scan_threads=" + std::to_string(sweep[pass]) +
          " (first diff at report line " + std::to_string(diff_line + 1) +
          ")");
    }
  }

  if (options.check_expectations) {
    for (std::size_t i = 0; i < scenario.reports.size(); ++i) {
      const auto& block = scenario.reports[i];
      const auto lines = split_lines(reference[i]);
      std::size_t pos = 0;
      for (const auto& expectation : block.expectations) {
        std::size_t found = lines.size();
        for (std::size_t j = pos; j < lines.size(); ++j) {
          if (safe_search(lines[j], expectation.regex)) {
            found = j;
            break;
          }
        }
        if (found == lines.size()) {
          result.failures.push_back(
              scenario.file + ":" + std::to_string(expectation.line) +
              ": expectation /" + expectation.pattern +
              "/ not matched in report '" + block.name +
              "' (searched report lines " + std::to_string(pos + 1) + ".." +
              std::to_string(lines.size()) + ")");
          break;  // later expectations would cascade-fail; stop at the first
        }
        pos = found + 1;
      }
    }
  }

  result.passed = result.failures.empty();
  return result;
}

// ------------------------------------------------- update-mode helpers

std::string escape_expectation(std::string_view line) {
  static constexpr std::string_view kMeta = R"(^$\.*+?()[]{}|)";
  std::string out;
  out.reserve(line.size());
  for (const char c : line) {
    if (kMeta.find(c) != std::string_view::npos) out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string expectation_literal_prefix(std::string_view pattern) {
  static constexpr std::string_view kMeta = R"(^$.*+?()[]{}|)";
  std::string out;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const char c = pattern[i];
    if (c == '\\') {
      // An escaped metacharacter is a literal; an escape class (\d, \s...)
      // ends the literal prefix.
      if (i + 1 < pattern.size() &&
          kMeta.find(pattern[i + 1]) != std::string_view::npos) {
        out.push_back(pattern[i + 1]);
        ++i;
        continue;
      }
      break;
    }
    if (kMeta.find(c) != std::string_view::npos) break;
    out.push_back(c);
  }
  return out;
}

}  // namespace ofh::core
