#include "core/scan_shard.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/study.h"
#include "devices/population.h"
#include "honeynet/deployments.h"
#include "net/fabric.h"
#include "obs/trace.h"
#include "scanner/scanner.h"

namespace ofh::core {

std::uint64_t scale_paper_count(std::uint64_t paper, double scale) {
  if (paper == 0) return 0;
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(paper * scale + 0.5));
}

// The replica repeats Study::setup_internet()'s allocation order exactly
// (population build, then wild honeypots), so every address — devices and
// honeypots alike — matches the main internet's; the telescope is omitted
// because sweeps only target populated prefixes, never the darknet. Each
// shard owns its Simulation, Fabric and ScanDb, so shards share no mutable
// state and are free to run concurrently — or in another process.
ScanShardResult run_scan_shard(const StudyConfig& config,
                               const ScanShardJob& job,
                               const ScanShardProgressFn& progress) {
  // All trace events this sweep produces — probe mints, packet fates, TCP
  // transitions — land in the sweep's own deterministic shard recorder
  // (shard 0 is the main simulation), regardless of which worker thread or
  // process runs the job.
  const obs::TraceShardScope trace_scope(
      static_cast<std::uint16_t>(job.index + 1));
  sim::Simulation sim;
  net::Fabric fabric(sim, config.seed);
  fabric.set_latency(sim::msec(15), sim::msec(25));
  // Same schedule and same fabric seed as the main internet: the replica's
  // fault timeline is a pure function of (seed, sim-time), so a sweep sees
  // identical faults whether it runs inline or on a worker thread.
  if (!config.fault_schedule.empty()) {
    fabric.set_fault_schedule(config.fault_schedule);
  }

  devices::PopulationSpec spec;
  spec.seed = config.seed;
  spec.scale = config.population_scale;
  devices::Population population(spec);
  population.build();
  population.attach_all(fabric);

  std::vector<std::unique_ptr<honeynet::WildHoneypot>> honeypots;
  for (const auto& signature : honeynet::honeypot_signatures()) {
    const auto count =
        scale_paper_count(signature.paper_count, config.population_scale);
    for (std::uint64_t i = 0; i < count; ++i) {
      honeypots.push_back(std::make_unique<honeynet::WildHoneypot>(
          signature, population.allocate_extra()));
      honeypots.back()->attach(fabric);
    }
  }

  scanner::ScanDb db;
  scanner::Scanner scanner(util::Ipv4Addr(192, 35, 168, 10), db);
  scanner.attach(fabric);
  if (job.start > sim.now()) sim.run_until(job.start);

  scanner::ScanConfig scan;
  scan.protocol = job.protocol;
  scan.targets = population.prefixes();
  scan.blocklist = scanner::default_blocklist();
  scan.seed = job.sweep_seed;
  scan.batch_size = config.scan_batch;
  scan.max_attempts = config.scan_attempts;
  bool done = false;
  scanner.start(scan, [&done] { done = true; });
  if (!progress) {
    while (!done && sim.step()) {
    }
  } else {
    // Progress sampling: every 1024 sim steps report the shard's resolved
    // count (kSample), and mark each kSweepProgressStride boundary crossing
    // (kStride). Both the sample points and the stride crossings are pure
    // functions of the shard's deterministic event stream, so a re-run of
    // this job — on any thread, or in any process — replays the identical
    // progress sequence.
    std::uint64_t steps = 0;
    std::uint64_t published_stride = 0;
    while (!done && sim.step()) {
      if ((++steps & 1023u) != 0) continue;
      const std::uint64_t resolved =
          db.responsive() + db.refused() + db.unresolved();
      progress({ScanShardProgressKind::kSample, resolved, sim.now()});
      const std::uint64_t stride = resolved / kSweepProgressStride;
      if (stride > published_stride) {
        published_stride = stride;
        progress({ScanShardProgressKind::kStride, resolved, sim.now()});
      }
    }
    const std::uint64_t resolved =
        db.responsive() + db.refused() + db.unresolved();
    progress({ScanShardProgressKind::kDone, resolved, sim.now()});
  }

  ScanShardResult shard;
  shard.records = db.records();
  shard.probes = db.probes_sent();
  shard.responsive = db.responsive();
  shard.refused = db.refused();
  shard.unresolved = db.unresolved();
  shard.retries = db.retries();
  shard.events = sim.events_processed();
  shard.finished = sim.now();
  return shard;
}

namespace {

ScanShardDispatcher& dispatcher_slot() {
  static ScanShardDispatcher dispatcher;
  return dispatcher;
}

}  // namespace

void set_scan_shard_dispatcher(ScanShardDispatcher dispatcher) {
  dispatcher_slot() = std::move(dispatcher);
}

const ScanShardDispatcher& scan_shard_dispatcher() {
  return dispatcher_slot();
}

}  // namespace ofh::core
