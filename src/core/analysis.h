// Cross-experiment analysis: suspicious-source classification (scanning
// service vs malicious vs unknown), multistage-attack detection, GreyNoise /
// VirusTotal cross-validation, and the §5.3 correlation of misconfigured
// devices that attack.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "classify/misconfig_rules.h"
#include "honeynet/event_log.h"
#include "intel/threat_intel.h"
#include "telescope/telescope.h"

namespace ofh::core {

enum class SourceClass { kScanningService, kMalicious, kUnknown };

// Classifies a source by reverse lookup (scanning-service domains are
// recurring, registered scanners) and behaviour; mirrors §4.3.1.
SourceClass classify_source(util::Ipv4Addr source,
                            const intel::ReverseDns& rdns,
                            const std::vector<std::string>& service_domains);

struct SourceBreakdown {
  std::uint64_t scanning_service = 0;
  std::uint64_t malicious = 0;
  std::uint64_t unknown = 0;
};

// Per-honeypot unique-source classification (Table 7's right columns).
// Malicious = sources whose events include any non-scan attack type;
// everything else that is not a scanning service is unknown/suspicious.
std::map<std::string, SourceBreakdown> classify_honeypot_sources(
    const honeynet::EventLog& log, const intel::ReverseDns& rdns,
    const std::vector<std::string>& service_domains);

// ---------------------------------------------------------------- multistage

struct MultistageChain {
  util::Ipv4Addr source;
  std::vector<proto::Protocol> stages;  // ordered by first contact
};

// Groups honeypot events by source and extracts protocol sequences of
// length >= 2, skipping scanning-service sources (paper §5.4).
std::vector<MultistageChain> detect_multistage(
    const honeynet::EventLog& log, const intel::ReverseDns& rdns,
    const std::vector<std::string>& service_domains);

// Step-wise protocol tallies for Figure 9: stage index -> protocol counts.
std::vector<util::Counter> multistage_stage_histogram(
    const std::vector<MultistageChain>& chains);

// -------------------------------------------------------------- correlation

struct InfectedCorrelation {
  std::set<std::uint32_t> honeypot_only;
  std::set<std::uint32_t> telescope_only;
  std::set<std::uint32_t> both;
  std::uint64_t total() const {
    return honeypot_only.size() + telescope_only.size() + both.size();
  }
};

// Intersects misconfigured scan findings with honeypot and telescope attack
// sources (§5.3: the 11,118 devices, split 1,147 / 1,274 / 8,697).
InfectedCorrelation correlate_infected(
    const std::vector<classify::MisconfigFinding>& findings,
    const honeynet::EventLog& log, const telescope::Telescope& telescope);

// Additional IoT attackers found via Censys "iot" tags among non-correlated
// sources (the +1,671 of §5.3).
std::uint64_t censys_extra_iot(
    const honeynet::EventLog& log, const telescope::Telescope& telescope,
    const std::set<std::uint32_t>& already_correlated,
    const intel::CensysDb& censys);

// ---------------------------------------------------- intel cross-validation

struct GreyNoiseComparison {
  std::uint64_t ours = 0;       // sources we classify as scanning services
  std::uint64_t greynoise = 0;  // of those, GreyNoise knows as benign
  std::uint64_t missed = 0;     // ours - known to GreyNoise (paper: 2,023)
};
GreyNoiseComparison compare_with_greynoise(
    const std::vector<util::Ipv4Addr>& scanning_sources,
    const intel::GreyNoiseDb& greynoise);

// Fraction of unknown/suspicious sources flagged malicious by VirusTotal,
// per protocol (Figure 6). `label_suffix` distinguishes (H) vs (T).
std::map<std::string, double> virustotal_flag_rates(
    const std::map<std::string, std::vector<util::Ipv4Addr>>& by_protocol,
    const intel::VirusTotalDb& virustotal, const std::string& label_suffix);

}  // namespace ofh::core
