// Capture analysis: extract malware identities from captured payloads and
// look them up in the VirusTotal oracle — the paper's §5.1 workflow
// ("we examine the pcap files with the Virustotal database for signs of
// malware signatures and discover 113 Mirai variants").
#pragma once

#include <map>
#include <set>
#include <string>

#include "intel/threat_intel.h"
#include "net/capture.h"

namespace ofh::core {

struct MalwareReport {
  // family -> set of distinct variant hashes observed.
  std::map<std::string, std::set<std::string>> variants_by_family;
  std::set<std::string> unknown_hashes;  // not in VirusTotal
  std::size_t total_variants() const {
    std::size_t count = 0;
    for (const auto& [family, hashes] : variants_by_family) {
      count += hashes.size();
    }
    return count;
  }
};

// Scans payload bytes for "sha256=<64 hex chars>" markers (the dropper
// one-liners and FTP uploads embed them) and resolves each digest against
// the hash corpus.
MalwareReport analyze_capture(const net::PacketCapture& capture,
                              const intel::VirusTotalDb& virustotal);

}  // namespace ofh::core
