// One protocol sweep as a self-contained, relocatable job: the unit of
// work behind both execution backends of Study::run_scan(). A shard runs
// on a private replica of the simulated Internet and is a pure function of
// (StudyConfig, ScanShardJob) — no ambient state beyond the calling
// thread's trace-shard binding, which run_scan_shard() establishes itself.
// That purity is what lets the same job run inline, on a ParallelRunner
// thread, or in a separate worker process (dist/worker.h) and produce
// byte-identical output: results merge by (time, shard, seq) regardless of
// where the shard executed, and a crashed worker's job can simply be re-run
// elsewhere.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "proto/service.h"
#include "scanner/scan_db.h"
#include "sim/simulation.h"

namespace ofh::core {

struct StudyConfig;

// Scales a paper count to a study's population scale (minimum 1 for any
// nonzero paper count). Shared between the main internet and the shard
// replicas so both allocate identical honeypot counts — and therefore
// identical addresses — from the population's extra pool.
std::uint64_t scale_paper_count(std::uint64_t paper, double scale);

// Shards publish a progress callback whenever their resolved count crosses
// a multiple of this stride (checked every 1024 sim steps). Both constants
// are pure functions of the shard's deterministic event stream, so the
// per-kind progress-event counts are byte-identical for every scan_threads
// and scan_workers value.
inline constexpr std::uint64_t kSweepProgressStride = 4096;

enum class ScanShardProgressKind : std::uint8_t {
  kSample,  // every 1024 sim steps: refresh the live sweep counter
  kStride,  // resolved crossed a kSweepProgressStride boundary
  kDone,    // sweep resolved; final counts
};

struct ScanShardProgress {
  ScanShardProgressKind kind = ScanShardProgressKind::kSample;
  std::uint64_t resolved = 0;  // responsive + refused + unresolved so far
  sim::Time sim_time = 0;      // shard clock at the sample point
};

// Per-job progress callback (nullable: pass {} for a silent run). Invoked
// from whatever thread runs the shard.
using ScanShardProgressFn = std::function<void(const ScanShardProgress&)>;

// Everything that identifies one sweep. index doubles as the trace shard
// (index + 1; shard 0 is the main simulation) and the introspection sweep
// slot (index), so a job is fully described by this struct plus the config.
struct ScanShardJob {
  std::uint32_t index = 0;
  proto::Protocol protocol = proto::Protocol::kTelnet;
  std::uint64_t sweep_seed = 0;
  sim::Time start = 0;
  std::uint64_t sweep_total = 0;  // slot total for done/total progress bars
};

// One sweep's output.
struct ScanShardResult {
  std::vector<scanner::ScanRecord> records;  // in event (= time) order
  std::uint64_t probes = 0;
  // Per-target outcome accounting (scanner/scan_db.h): folded into the
  // study DB so probes == responsive + refused + unresolved holds there too.
  std::uint64_t responsive = 0;
  std::uint64_t refused = 0;
  std::uint64_t unresolved = 0;
  std::uint64_t retries = 0;
  std::uint64_t events = 0;  // shard-simulation events processed
  sim::Time finished = 0;    // shard clock when the sweep resolved
};

// Runs one sweep on a private replica of the simulated Internet. Reads only
// the config fields a worker process ships over the wire: seed,
// population_scale, fault_schedule, scan_batch, scan_attempts
// (dist/protocol.h serializes exactly this subset).
ScanShardResult run_scan_shard(const StudyConfig& config,
                               const ScanShardJob& job,
                               const ScanShardProgressFn& progress);

// Batch-level progress sink: (job index, progress). A dispatcher must
// deliver each job's deterministic progress sequence exactly once — every
// kStride in order followed by one kDone per job — even when a job is
// retried after a worker crash (dist/coordinator.h deduplicates by
// per-job max stride), so the introspection event stream stays
// byte-identical to the in-process path.
using ScanShardProgressSink =
    std::function<void(std::uint32_t, const ScanShardProgress&)>;

// Pluggable execution backend for Study::run_scan() when
// StudyConfig::scan_workers > 0. Returns the results in job order, or
// nullopt to decline the batch (Study then degrades gracefully to the
// in-process ParallelRunner path). Installed by distributed entry points
// (tools/ofh-coordinator, tools/scenario) — never by library code, and
// deliberately not consulted when scan_workers == 0.
using ScanShardDispatcher =
    std::function<std::optional<std::vector<ScanShardResult>>(
        const StudyConfig&, const std::vector<ScanShardJob>&,
        const ScanShardProgressSink&)>;
void set_scan_shard_dispatcher(ScanShardDispatcher dispatcher);
const ScanShardDispatcher& scan_shard_dispatcher();

}  // namespace ofh::core
