// HTTP/1.1 request/response codec and a small routed server used by device
// web frontends and honeypots (login pages, UPnP rootDesc.xml, dropper URLs).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::http {

struct Request {
  std::string method = "GET";
  std::string path = "/";
  std::map<std::string, std::string> headers;  // lowercase keys
  std::string body;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  std::string body;
  std::string server;  // Server: header
};

util::Bytes encode_request(const Request& request);
std::optional<Request> decode_request(std::string_view text);
util::Bytes encode_response(const Response& response);
std::optional<Response> decode_response(std::string_view text);

// ------------------------------------------------------------------- server

struct HttpServerConfig {
  std::uint16_t port = 80;
  std::string server_header = "lighttpd/1.4.54";
  // Path -> static body. A path of "*" is the catch-all (404 if absent).
  std::map<std::string, std::string> routes;
  // If set, POST /login with user/pass form fields is checked against auth.
  AuthConfig auth;
  bool has_login_form = false;
};

struct HttpEvents {
  std::function<void(util::Ipv4Addr, const Request&)> on_request;
  std::function<void(util::Ipv4Addr, const std::string& user,
                     const std::string& pass, bool ok)>
      on_login_attempt;
};

class HttpServer : public Service {
 public:
  HttpServer(HttpServerConfig config, HttpEvents events = {})
      : config_(std::move(config)), events_(std::move(events)) {}

  void install(net::Host& host) override;
  std::string_view name() const override { return "http"; }
  std::uint16_t port() const override { return config_.port; }
  const HttpServerConfig& config() const { return config_; }

 private:
  HttpServerConfig config_;
  HttpEvents events_;
};

// One-shot HTTP GET helper (used by malware droppers fetching payload URLs).
class HttpClient {
 public:
  using Callback = std::function<void(std::optional<Response>)>;
  static void get(net::Host& from, util::Ipv4Addr target, std::uint16_t port,
                  std::string path, Callback done);
};

}  // namespace ofh::proto::http
