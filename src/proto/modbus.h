// Modbus/TCP (MBAP header + PDU). Implements the register model and the
// function codes the paper's Conpot deployment observed: read/write holding
// registers, read device identification, report server id, plus exception
// responses for the ~90% of traffic that used invalid function codes.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::modbus {

enum class Function : std::uint8_t {
  kReadHoldingRegisters = 0x03,
  kWriteSingleRegister = 0x06,
  kWriteMultipleRegisters = 0x10,
  kReportServerId = 0x11,
  kReadDeviceIdentification = 0x2b,
};

// All valid public function codes (1..0x2b subset); anything else is an
// ILLEGAL FUNCTION exception. Nineteen codes, matching the paper's count.
bool is_valid_function(std::uint8_t code);

struct Request {
  std::uint16_t transaction_id = 0;
  std::uint8_t unit_id = 1;
  std::uint8_t function = 0x03;
  util::Bytes data;
};

util::Bytes encode_request(const Request& request);
std::optional<Request> decode_request(std::span<const std::uint8_t> data,
                                      std::size_t* consumed);
// Response reuses the Request frame layout (function | 0x80 on exception).
util::Bytes encode_response(std::uint16_t transaction_id,
                            std::uint8_t unit_id, std::uint8_t function,
                            const util::Bytes& data);

struct ModbusServerConfig {
  std::uint16_t port = 502;
  std::string vendor = "Siemens";
  std::string product = "SIMATIC S7-200";
  std::uint16_t register_count = 128;
};

struct ModbusEvents {
  std::function<void(util::Ipv4Addr, std::uint8_t function, bool valid)>
      on_request;
  std::function<void(util::Ipv4Addr, std::uint16_t address,
                     std::uint16_t value)>
      on_register_write;
};

class ModbusServer : public Service {
 public:
  explicit ModbusServer(ModbusServerConfig config, ModbusEvents events = {});

  void install(net::Host& host) override;
  std::string_view name() const override { return "modbus"; }
  std::uint16_t port() const override { return config_.port; }

  const ModbusServerConfig& config() const { return config_; }
  std::uint16_t register_value(std::uint16_t address) const;

 private:
  struct State;
  ModbusServerConfig config_;
  ModbusEvents events_;
  std::shared_ptr<State> state_;
};

}  // namespace ofh::proto::modbus
