#include "proto/service.h"

namespace ofh::proto {

std::string_view protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kTelnet: return "Telnet";
    case Protocol::kMqtt: return "MQTT";
    case Protocol::kCoap: return "CoAP";
    case Protocol::kAmqp: return "AMQP";
    case Protocol::kXmpp: return "XMPP";
    case Protocol::kUpnp: return "UPnP";
    case Protocol::kSsh: return "SSH";
    case Protocol::kHttp: return "HTTP";
    case Protocol::kFtp: return "FTP";
    case Protocol::kSmb: return "SMB";
    case Protocol::kModbus: return "Modbus";
    case Protocol::kS7: return "S7";
  }
  return "?";
}

std::vector<std::uint16_t> protocol_ports(Protocol protocol) {
  switch (protocol) {
    case Protocol::kTelnet: return {23, 2323};
    case Protocol::kMqtt: return {1883};
    case Protocol::kCoap: return {5683};
    case Protocol::kAmqp: return {5672};
    case Protocol::kXmpp: return {5222, 5269};
    case Protocol::kUpnp: return {1900};
    case Protocol::kSsh: return {22};
    case Protocol::kHttp: return {80};
    case Protocol::kFtp: return {21};
    case Protocol::kSmb: return {445};
    case Protocol::kModbus: return {502};
    case Protocol::kS7: return {102};
  }
  return {};
}

std::uint16_t default_port(Protocol protocol) {
  return protocol_ports(protocol).front();
}

bool is_udp(Protocol protocol) {
  return protocol == Protocol::kCoap || protocol == Protocol::kUpnp;
}

const std::vector<Protocol>& scanned_protocols() {
  static const std::vector<Protocol> kScanned = {
      Protocol::kCoap, Protocol::kUpnp, Protocol::kTelnet,
      Protocol::kMqtt, Protocol::kAmqp, Protocol::kXmpp};
  return kScanned;
}

}  // namespace ofh::proto
