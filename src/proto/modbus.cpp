#include "proto/modbus.h"

namespace ofh::proto::modbus {

bool is_valid_function(std::uint8_t code) {
  // The 19 public function codes of the Modbus spec.
  static constexpr std::array<std::uint8_t, 19> kValid = {
      0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x0b, 0x0c,
      0x0f, 0x10, 0x11, 0x14, 0x15, 0x16, 0x17, 0x18, 0x2b};
  for (const auto valid : kValid) {
    if (code == valid) return true;
  }
  return false;
}

util::Bytes encode_request(const Request& request) {
  util::ByteWriter out;
  out.u16(request.transaction_id)
      .u16(0)  // protocol id
      .u16(static_cast<std::uint16_t>(2 + request.data.size()))
      .u8(request.unit_id)
      .u8(request.function)
      .raw(request.data);
  return out.take();
}

std::optional<Request> decode_request(std::span<const std::uint8_t> data,
                                      std::size_t* consumed) {
  util::ByteReader reader(data);
  const auto transaction_id = reader.u16();
  const auto protocol_id = reader.u16();
  const auto length = reader.u16();
  if (!transaction_id || !protocol_id || !length || *length < 2) {
    return std::nullopt;
  }
  if (reader.remaining() < *length) return std::nullopt;
  const auto unit_id = reader.u8();
  const auto function = reader.u8();
  const auto body = reader.raw(*length - 2);
  if (!unit_id || !function || !body) return std::nullopt;
  Request request;
  request.transaction_id = *transaction_id;
  request.unit_id = *unit_id;
  request.function = *function;
  request.data.assign(body->begin(), body->end());
  if (consumed != nullptr) *consumed = reader.position();
  return request;
}

util::Bytes encode_response(std::uint16_t transaction_id,
                            std::uint8_t unit_id, std::uint8_t function,
                            const util::Bytes& data) {
  Request frame;
  frame.transaction_id = transaction_id;
  frame.unit_id = unit_id;
  frame.function = function;
  frame.data = data;
  return encode_request(frame);
}

struct ModbusServer::State {
  std::vector<std::uint16_t> registers;
};

ModbusServer::ModbusServer(ModbusServerConfig config, ModbusEvents events)
    : config_(std::move(config)),
      events_(std::move(events)),
      state_(std::make_shared<State>()) {
  state_->registers.assign(config_.register_count, 0);
  // Plausible process values so poisoning is observable.
  for (std::size_t i = 0; i < state_->registers.size(); ++i) {
    state_->registers[i] = static_cast<std::uint16_t>(1000 + i * 3);
  }
}

std::uint16_t ModbusServer::register_value(std::uint16_t address) const {
  if (address >= state_->registers.size()) return 0;
  return state_->registers[address];
}

void ModbusServer::install(net::Host& host) {
  auto config = config_;
  auto events = events_;
  auto state = state_;
  host.tcp().listen(config_.port, [config, events,
                                   state](net::TcpConnection& conn) {
    auto inbox = std::make_shared<util::Bytes>();
    conn.on_data = [config, events, state, inbox](
                       net::TcpConnection& conn,
                       std::span<const std::uint8_t> data) {
      inbox->insert(inbox->end(), data.begin(), data.end());
      for (;;) {
        std::size_t consumed = 0;
        const auto request = decode_request(*inbox, &consumed);
        if (!request) return;
        inbox->erase(inbox->begin(),
                     inbox->begin() + static_cast<std::ptrdiff_t>(consumed));

        const bool valid = is_valid_function(request->function);
        if (events.on_request) {
          events.on_request(conn.remote_addr(), request->function, valid);
        }
        if (!valid) {
          conn.send(encode_response(request->transaction_id, request->unit_id,
                                    request->function | 0x80,
                                    {0x01}));  // ILLEGAL FUNCTION
          continue;
        }

        util::ByteWriter body;
        switch (static_cast<Function>(request->function)) {
          case Function::kReadHoldingRegisters: {
            util::ByteReader args(request->data);
            const auto address = args.u16();
            const auto count = args.u16();
            if (!address || !count || *count == 0 || *count > 125 ||
                *address + *count > state->registers.size()) {
              conn.send(encode_response(
                  request->transaction_id, request->unit_id,
                  request->function | 0x80, {0x02}));  // ILLEGAL ADDRESS
              continue;
            }
            body.u8(static_cast<std::uint8_t>(*count * 2));
            for (std::uint16_t i = 0; i < *count; ++i) {
              body.u16(state->registers[*address + i]);
            }
            break;
          }
          case Function::kWriteSingleRegister: {
            util::ByteReader args(request->data);
            const auto address = args.u16();
            const auto value = args.u16();
            if (!address || !value ||
                *address >= state->registers.size()) {
              conn.send(encode_response(request->transaction_id,
                                        request->unit_id,
                                        request->function | 0x80, {0x02}));
              continue;
            }
            state->registers[*address] = *value;
            if (events.on_register_write) {
              events.on_register_write(conn.remote_addr(), *address, *value);
            }
            body.u16(*address).u16(*value);  // echo
            break;
          }
          case Function::kWriteMultipleRegisters: {
            util::ByteReader args(request->data);
            const auto address = args.u16();
            const auto count = args.u16();
            const auto byte_count = args.u8();
            if (!address || !count || !byte_count ||
                *address + *count > state->registers.size()) {
              conn.send(encode_response(request->transaction_id,
                                        request->unit_id,
                                        request->function | 0x80, {0x02}));
              continue;
            }
            for (std::uint16_t i = 0; i < *count; ++i) {
              const auto value = args.u16();
              if (!value) break;
              state->registers[*address + i] = *value;
              if (events.on_register_write) {
                events.on_register_write(conn.remote_addr(),
                                         *address + i, *value);
              }
            }
            body.u16(*address).u16(*count);
            break;
          }
          case Function::kReportServerId:
            body.str8(config.vendor + " " + config.product);
            break;
          case Function::kReadDeviceIdentification:
            body.str8(config.vendor).str8(config.product);
            break;
        }
        conn.send(encode_response(request->transaction_id, request->unit_id,
                                  request->function, body.take()));
      }
    };
  });
}

}  // namespace ofh::proto::modbus
