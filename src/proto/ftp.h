// FTP (RFC 959, control channel only): greeting, USER/PASS login including
// anonymous, STOR/RETR/LIST over an in-memory file table. Data transfers are
// inlined on the control channel (the measurement needs who-stored-what,
// not PASV port choreography).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::ftp {

// A control-channel command line: lowercased verb plus raw argument.
struct Command {
  std::string verb;
  std::string arg;
};

// Parses one CRLF-stripped control line, e.g. "USER anonymous". Rejects
// empty lines and lines whose verb contains non-printable bytes.
std::optional<Command> decode_command(std::string_view line);
util::Bytes encode_command(const Command& command);

struct FtpServerConfig {
  std::uint16_t port = 21;
  std::string greeting = "220 (vsFTPd 3.0.3)";
  AuthConfig auth;          // allow_anonymous models Springall et al.'s misconfig
  bool writable = true;     // STOR allowed once logged in
};

struct FtpEvents {
  std::function<void(util::Ipv4Addr)> on_connect;
  std::function<void(util::Ipv4Addr, const std::string& user,
                     const std::string& pass, bool ok)>
      on_login;
  std::function<void(util::Ipv4Addr, const std::string& filename,
                     const std::string& content)>
      on_store;
};

class FtpServer : public Service {
 public:
  FtpServer(FtpServerConfig config, FtpEvents events = {});

  void install(net::Host& host) override;
  std::string_view name() const override { return "ftp"; }
  std::uint16_t port() const override { return config_.port; }

  const FtpServerConfig& config() const { return config_; }
  // Uploaded files (malware drops land here).
  const std::map<std::string, std::string>& files() const;

 private:
  struct State;
  FtpServerConfig config_;
  FtpEvents events_;
  std::shared_ptr<State> state_;
};

}  // namespace ofh::proto::ftp
