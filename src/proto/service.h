// Common types for protocol service engines: authentication configuration
// and the Service interface that devices/honeypots compose.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ofh::net {
class Host;
}

namespace ofh::proto {

struct Credentials {
  std::string user;
  std::string pass;
  auto operator<=>(const Credentials&) const = default;
};

// Authentication posture of a service. The paper's misconfiguration classes
// map onto this struct: required=false is "no auth", allow_anonymous is
// XMPP-style ANONYMOUS SASL, plaintext_only is "no encryption".
struct AuthConfig {
  bool required = true;
  bool allow_anonymous = false;
  bool plaintext_only = false;  // offers PLAIN / no TLS
  std::vector<Credentials> valid;

  bool check(std::string_view user, std::string_view pass) const {
    if (!required) return true;
    for (const auto& cred : valid) {
      if (cred.user == user && cred.pass == pass) return true;
    }
    return false;
  }

  static AuthConfig open() {
    AuthConfig config;
    config.required = false;
    return config;
  }
  static AuthConfig anonymous() {
    AuthConfig config;
    config.allow_anonymous = true;
    return config;
  }
  static AuthConfig with(std::string user, std::string pass) {
    AuthConfig config;
    config.valid.push_back({std::move(user), std::move(pass)});
    return config;
  }
};

// A protocol endpoint that can be installed on a host. Devices own a set of
// services; install() binds the listeners on the host's stacks.
class Service {
 public:
  virtual ~Service() = default;
  virtual void install(net::Host& host) = 0;
  virtual std::string_view name() const = 0;
  virtual std::uint16_t port() const = 0;
};

// The six scanned protocols plus the honeypot-side extras.
enum class Protocol : std::uint8_t {
  kTelnet,
  kMqtt,
  kCoap,
  kAmqp,
  kXmpp,
  kUpnp,
  kSsh,
  kHttp,
  kFtp,
  kSmb,
  kModbus,
  kS7,
};

std::string_view protocol_name(Protocol protocol);

// Default port(s) per protocol. Telnet scans cover both 23 and 2323 (the
// paper's explanation for finding more hosts than Project Sonar).
std::vector<std::uint16_t> protocol_ports(Protocol protocol);
std::uint16_t default_port(Protocol protocol);
bool is_udp(Protocol protocol);

// The six protocols of the paper's Internet-wide scan, in scan order.
const std::vector<Protocol>& scanned_protocols();

}  // namespace ofh::proto
