// MQTT 3.1.1 (OASIS): fixed-header framing with variable-length remaining
// length, CONNECT/CONNACK/PUBLISH/SUBSCRIBE/... packets, and a broker engine
// with topic store, $SYS topics and configurable authentication.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::mqtt {

enum class PacketType : std::uint8_t {
  kConnect = 1,
  kConnack = 2,
  kPublish = 3,
  kPuback = 4,
  kSubscribe = 8,
  kSuback = 9,
  kUnsubscribe = 10,
  kUnsuback = 11,
  kPingreq = 12,
  kPingresp = 13,
  kDisconnect = 14,
};

// CONNACK return codes (MQTT 3.1.1 §3.2.2.3). Code 0 is the paper's
// "MQTT Connection Code:0" no-auth misconfiguration indicator.
enum class ConnectCode : std::uint8_t {
  kAccepted = 0,
  kUnacceptableProtocol = 1,
  kIdentifierRejected = 2,
  kServerUnavailable = 3,
  kBadCredentials = 4,
  kNotAuthorized = 5,
};

struct FixedHeader {
  PacketType type;
  std::uint8_t flags = 0;
  std::uint32_t remaining_length = 0;
  std::size_t header_size = 0;  // bytes consumed by the fixed header
};

// Decodes a fixed header from the front of data; nullopt if incomplete or
// malformed (remaining length > 4 varint bytes).
std::optional<FixedHeader> decode_fixed_header(
    std::span<const std::uint8_t> data);

// Encodes type+flags and the varint remaining length, then appends body.
util::Bytes encode_packet(PacketType type, std::uint8_t flags,
                          std::span<const std::uint8_t> body);

struct ConnectPacket {
  std::string client_id;
  std::optional<std::string> username;
  std::optional<std::string> password;
  bool clean_session = true;
  std::uint16_t keep_alive = 60;
};
util::Bytes encode_connect(const ConnectPacket& packet);
std::optional<ConnectPacket> decode_connect(
    std::span<const std::uint8_t> body);

util::Bytes encode_connack(ConnectCode code, bool session_present = false);
// Returns the return code of a CONNACK frame body.
std::optional<ConnectCode> decode_connack(std::span<const std::uint8_t> body);

struct PublishPacket {
  std::string topic;
  util::Bytes payload;
  bool retain = false;
};
util::Bytes encode_publish(const PublishPacket& packet);
std::optional<PublishPacket> decode_publish(std::span<const std::uint8_t> body,
                                            std::uint8_t flags);

struct SubscribePacket {
  std::uint16_t packet_id = 1;
  std::vector<std::string> topic_filters;
};
util::Bytes encode_subscribe(const SubscribePacket& packet);
std::optional<SubscribePacket> decode_subscribe(
    std::span<const std::uint8_t> body);
util::Bytes encode_suback(std::uint16_t packet_id, std::size_t topic_count);

// Topic filter matching with + and # wildcards (§4.7).
bool topic_matches(std::string_view filter, std::string_view topic);

// ------------------------------------------------------------------- broker

struct BrokerConfig {
  std::uint16_t port = 1883;
  AuthConfig auth;  // required=false reproduces the open-broker misconfig
  bool expose_sys_topics = true;
  std::string server_name = "mosquitto";
  std::string version = "1.6.9";
  // Retained messages pre-loaded into the topic store (device telemetry;
  // Table 11 identifies devices by topic names like "octoPrint/...").
  std::vector<std::pair<std::string, std::string>> retained;
};

struct BrokerEvents {
  std::function<void(util::Ipv4Addr, ConnectCode)> on_connect;
  std::function<void(util::Ipv4Addr, const std::string& topic, bool write)>
      on_topic_access;
};

class Broker : public Service {
 public:
  explicit Broker(BrokerConfig config, BrokerEvents events = {});

  void install(net::Host& host) override;
  std::string_view name() const override { return "mqtt"; }
  std::uint16_t port() const override { return config_.port; }

  const BrokerConfig& config() const { return config_; }
  // Current retained value of a topic, if any (lets tests observe poisoning).
  std::optional<std::string> retained(const std::string& topic) const;
  std::size_t session_count() const;

 private:
  struct State;
  BrokerConfig config_;
  BrokerEvents events_;
  std::shared_ptr<State> state_;
};

}  // namespace ofh::proto::mqtt
