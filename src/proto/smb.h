// SMB (simplified SMB1-style framing): NetBIOS session header + command
// byte. Models dialect negotiation, session setup with credentials, and
// recognition of the Eternal* exploit family by their Trans2 signature —
// the honeypots classify exploit attempts, they do not implement MS17-010.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::smb {

enum class Command : std::uint8_t {
  kNegotiate = 0x72,
  kSessionSetup = 0x73,
  kTrans2 = 0x32,       // vector used by EternalBlue-style exploits
  kEcho = 0x2b,
};

struct SmbFrame {
  Command command = Command::kNegotiate;
  util::Bytes payload;
};

// NetBIOS length prefix + 0xFF 'S' 'M' 'B' + command + payload.
util::Bytes encode_frame(const SmbFrame& frame);
std::optional<SmbFrame> decode_frame(std::span<const std::uint8_t> data,
                                     std::size_t* consumed);

// Trans2 subcommand 0x000e (TRANS2_SESSION_SETUP) is the EternalBlue probe
// marker used by scanners/exploits in the wild.
util::Bytes eternalblue_probe();
bool is_eternalblue_probe(const SmbFrame& frame);

struct SmbServerConfig {
  std::uint16_t port = 445;
  std::string dialect = "NT LM 0.12";
  std::string native_os = "Windows 7 Professional 7601 Service Pack 1";
  AuthConfig auth;
  bool vulnerable_to_eternalblue = false;  // honeypots advertise this
};

struct SmbEvents {
  std::function<void(util::Ipv4Addr)> on_connect;
  std::function<void(util::Ipv4Addr, const std::string& user, bool ok)>
      on_session_setup;
  std::function<void(util::Ipv4Addr, const util::Bytes& payload)>
      on_exploit_attempt;
};

class SmbServer : public Service {
 public:
  SmbServer(SmbServerConfig config, SmbEvents events = {})
      : config_(std::move(config)), events_(std::move(events)) {}

  void install(net::Host& host) override;
  std::string_view name() const override { return "smb"; }
  std::uint16_t port() const override { return config_.port; }
  const SmbServerConfig& config() const { return config_; }

 private:
  SmbServerConfig config_;
  SmbEvents events_;
};

}  // namespace ofh::proto::smb
