#include "proto/smb.h"

#include "util/strings.h"

namespace ofh::proto::smb {

namespace {
constexpr std::uint8_t kSmbMagic[4] = {0xff, 'S', 'M', 'B'};
}  // namespace

util::Bytes encode_frame(const SmbFrame& frame) {
  util::ByteWriter out;
  // NetBIOS session header: type 0, 3-byte length.
  const std::uint32_t length = 5 + static_cast<std::uint32_t>(
                                       frame.payload.size());
  out.u8(0).u24(length);
  out.raw(kSmbMagic).u8(static_cast<std::uint8_t>(frame.command));
  out.raw(frame.payload);
  return out.take();
}

std::optional<SmbFrame> decode_frame(std::span<const std::uint8_t> data,
                                     std::size_t* consumed) {
  util::ByteReader reader(data);
  const auto type = reader.u8();
  const auto length = reader.u24();
  if (!type || !length) return std::nullopt;
  if (*length < 5 || reader.remaining() < *length) return std::nullopt;
  if (!reader.expect(kSmbMagic)) return std::nullopt;
  const auto command = reader.u8();
  if (!command) return std::nullopt;
  const auto payload = reader.raw(*length - 5);
  if (!payload) return std::nullopt;
  SmbFrame frame;
  frame.command = static_cast<Command>(*command);
  frame.payload.assign(payload->begin(), payload->end());
  if (consumed != nullptr) *consumed = reader.position();
  return frame;
}

util::Bytes eternalblue_probe() {
  SmbFrame frame;
  frame.command = Command::kTrans2;
  util::ByteWriter payload;
  payload.u16(0x000e);  // TRANS2_SESSION_SETUP subcommand
  payload.text("ETERNALBLUE");
  frame.payload = payload.take();
  return encode_frame(frame);
}

bool is_eternalblue_probe(const SmbFrame& frame) {
  if (frame.command != Command::kTrans2 || frame.payload.size() < 2) {
    return false;
  }
  return frame.payload[0] == 0x00 && frame.payload[1] == 0x0e;
}

namespace {
struct SmbSession {
  util::Bytes inbox;
  bool negotiated = false;
};
}  // namespace

void SmbServer::install(net::Host& host) {
  auto config = config_;
  auto events = events_;
  host.tcp().listen(config_.port, [config, events](net::TcpConnection& conn) {
    if (events.on_connect) events.on_connect(conn.remote_addr());
    auto session = std::make_shared<SmbSession>();

    conn.on_data = [config, events, session](
                       net::TcpConnection& conn,
                       std::span<const std::uint8_t> data) {
      auto& inbox = session->inbox;
      inbox.insert(inbox.end(), data.begin(), data.end());
      for (;;) {
        std::size_t consumed = 0;
        const auto frame = decode_frame(inbox, &consumed);
        if (!frame) return;
        inbox.erase(inbox.begin(),
                    inbox.begin() + static_cast<std::ptrdiff_t>(consumed));

        switch (frame->command) {
          case Command::kNegotiate: {
            session->negotiated = true;
            SmbFrame reply;
            reply.command = Command::kNegotiate;
            util::ByteWriter payload;
            payload.str8(config.dialect).str8(config.native_os);
            // Vulnerable hosts leak the MS17-010 indicator bit observed by
            // network scanners.
            payload.u8(config.vulnerable_to_eternalblue ? 1 : 0);
            reply.payload = payload.take();
            conn.send(encode_frame(reply));
            break;
          }
          case Command::kSessionSetup: {
            util::ByteReader reader(frame->payload);
            const auto user = reader.str8();
            const auto pass = reader.str8();
            const bool ok = user && pass && config.auth.check(*user, *pass);
            if (events.on_session_setup) {
              events.on_session_setup(conn.remote_addr(),
                                      user.value_or("?"), ok);
            }
            SmbFrame reply;
            reply.command = Command::kSessionSetup;
            reply.payload = {static_cast<std::uint8_t>(ok ? 0 : 1)};
            conn.send(encode_frame(reply));
            break;
          }
          case Command::kTrans2: {
            if (is_eternalblue_probe(*frame) && events.on_exploit_attempt) {
              events.on_exploit_attempt(conn.remote_addr(), frame->payload);
            }
            SmbFrame reply;
            reply.command = Command::kTrans2;
            // A vulnerable host answers the probe; patched hosts reset.
            if (config.vulnerable_to_eternalblue) {
              reply.payload = {0x00, 0x0e, 0x51};  // "multiplex id" marker
              conn.send(encode_frame(reply));
            } else {
              conn.abort();
              return;
            }
            break;
          }
          case Command::kEcho: {
            conn.send(encode_frame(*frame));
            break;
          }
        }
      }
    };
  });
}

}  // namespace ofh::proto::smb
