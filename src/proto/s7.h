// S7comm (Siemens, simplified): TPKT + COTP connection setup, then S7 PDUs.
// PDU type 1 (Job) spawns a job slot on the device; flooding Jobs without
// reading responses reproduces the ICSA-16-299-01 DoS the paper observed on
// the Conpot honeypot's S7 port.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::s7 {

enum class PduType : std::uint8_t {
  kJob = 0x01,
  kAck = 0x02,
  kAckData = 0x03,
  kUserData = 0x07,
};

struct S7Frame {
  bool is_cotp_connect = false;  // COTP CR (connection request)
  PduType pdu_type = PduType::kJob;
  std::uint16_t pdu_ref = 0;
  util::Bytes payload;
};

util::Bytes encode_cotp_connect();
util::Bytes encode_pdu(PduType type, std::uint16_t pdu_ref,
                       const util::Bytes& payload);
std::optional<S7Frame> decode(std::span<const std::uint8_t> data,
                              std::size_t* consumed);

struct S7ServerConfig {
  std::uint16_t port = 102;
  std::string module = "6ES7 315-2EH14-0AB0";  // CPU 315-2 PN/DP
  std::string plant_id = "S C-C2UR28922012";
  // Job slots available before the device stops answering (the DoS).
  std::size_t job_slots = 32;
  // Slot recovery time once the flood stops.
  sim::Duration job_recovery = sim::seconds(10);
};

struct S7Events {
  std::function<void(util::Ipv4Addr)> on_connect;  // COTP connection request
  std::function<void(util::Ipv4Addr, PduType)> on_pdu;
  std::function<void(util::Ipv4Addr)> on_dos_triggered;
};

class S7Server : public Service {
 public:
  explicit S7Server(S7ServerConfig config, S7Events events = {});

  void install(net::Host& host) override;
  std::string_view name() const override { return "s7"; }
  std::uint16_t port() const override { return config_.port; }

  const S7ServerConfig& config() const { return config_; }
  bool saturated() const;  // all job slots consumed (device unresponsive)
  std::size_t jobs_in_flight() const;

 private:
  struct State;
  S7ServerConfig config_;
  S7Events events_;
  std::shared_ptr<State> state_;
};

}  // namespace ofh::proto::s7
