// CoAP (RFC 7252) over UDP: 4-byte header, token, delta-encoded options,
// 0xFF payload marker. Includes a resource server that answers
// "/.well-known/core" discovery with CoRE link format (RFC 6690) — the
// probe the paper's UDP scan sends — and models the amplification factor
// that makes open CoAP devices reflection-attack resources.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::coap {

enum class Type : std::uint8_t {
  kConfirmable = 0,
  kNonConfirmable = 1,
  kAcknowledgement = 2,
  kReset = 3,
};

// Code = class.detail (c.dd). Requests: 0.01 GET .. 0.04 DELETE.
enum class Code : std::uint8_t {
  kEmpty = 0x00,
  kGet = 0x01,
  kPost = 0x02,
  kPut = 0x03,
  kDelete = 0x04,
  kCreated = 0x41,   // 2.01
  kDeleted = 0x42,   // 2.02
  kChanged = 0x44,   // 2.04
  kContent = 0x45,   // 2.05
  kBadRequest = 0x80,  // 4.00
  kUnauthorized = 0x81,  // 4.01
  kNotFound = 0x84,  // 4.04
};

// Option numbers used here.
inline constexpr std::uint16_t kOptionUriPath = 11;
inline constexpr std::uint16_t kOptionContentFormat = 12;

struct Option {
  std::uint16_t number = 0;
  util::Bytes value;
};

struct Message {
  Type type = Type::kConfirmable;
  Code code = Code::kGet;
  std::uint16_t message_id = 0;
  util::Bytes token;
  std::vector<Option> options;
  util::Bytes payload;

  // Joins Uri-Path options with '/' (leading slash included).
  std::string uri_path() const;
  void set_uri_path(std::string_view path);
};

util::Bytes encode(const Message& message);
std::optional<Message> decode(std::span<const std::uint8_t> data);

// Convenience: a GET /.well-known/core discovery probe.
Message make_discovery_request(std::uint16_t message_id);

// ------------------------------------------------------------------- server

struct Resource {
  std::string path;          // e.g. "sensors/temp"
  std::string resource_type; // rt= attribute
  std::string value;         // current content, mutable via PUT when open
  bool writable = true;
};

struct CoapServerConfig {
  std::uint16_t port = 5683;
  // If true, any source may read/write all resources ("Full Access" / the
  // paper's x1C indicator). If false, non-discovery requests get 4.01.
  bool open_access = true;
  // If true, /.well-known/core discloses the resource table (the reflection
  // resource); if false the device still answers, but with a bare 4.01 —
  // exposed to the scan without being exploitable.
  bool expose_discovery = true;
  std::vector<Resource> resources;
  // Padding appended to discovery responses; models verbose device tables
  // that drive amplification (response_bytes / request_bytes).
  std::size_t discovery_padding = 0;
};

struct CoapEvents {
  std::function<void(util::Ipv4Addr, const std::string& path, Code code)>
      on_request;
};

class CoapServer : public Service {
 public:
  explicit CoapServer(CoapServerConfig config, CoapEvents events = {});

  void install(net::Host& host) override;
  std::string_view name() const override { return "coap"; }
  std::uint16_t port() const override { return config_.port; }

  const CoapServerConfig& config() const { return config_; }
  // Current value of a resource (tests observe poisoning via PUT).
  std::optional<std::string> resource_value(const std::string& path) const;

  // CoRE link-format body for /.well-known/core.
  std::string link_format() const;

 private:
  struct State;
  CoapServerConfig config_;
  CoapEvents events_;
  std::shared_ptr<State> state_;
};

}  // namespace ofh::proto::coap
