#include "proto/ftp.h"

#include "util/strings.h"

namespace ofh::proto::ftp {

std::optional<Command> decode_command(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.remove_suffix(1);
  }
  const auto space = line.find(' ');
  const std::string_view verb =
      space == std::string_view::npos ? line : line.substr(0, space);
  if (verb.empty()) return std::nullopt;
  for (const char c : verb) {
    if (static_cast<unsigned char>(c) < 0x21 ||
        static_cast<unsigned char>(c) > 0x7e) {
      return std::nullopt;
    }
  }
  Command command;
  command.verb = util::to_lower(verb);
  if (space != std::string_view::npos) {
    command.arg = std::string(line.substr(space + 1));
  }
  return command;
}

util::Bytes encode_command(const Command& command) {
  std::string line = command.verb;
  if (!command.arg.empty()) line += " " + command.arg;
  line += "\r\n";
  return util::to_bytes(line);
}

struct FtpServer::State {
  std::map<std::string, std::string> files;
};

FtpServer::FtpServer(FtpServerConfig config, FtpEvents events)
    : config_(std::move(config)),
      events_(std::move(events)),
      state_(std::make_shared<State>()) {}

const std::map<std::string, std::string>& FtpServer::files() const {
  return state_->files;
}

namespace {
struct FtpSession {
  std::string user;
  bool logged_in = false;
  std::string buffer;
  // When non-empty, the next line(s) are file content for this name,
  // terminated by a line with only ".".
  std::string storing;
  std::string store_buffer;
};
}  // namespace

void FtpServer::install(net::Host& host) {
  auto config = config_;
  auto events = events_;
  auto state = state_;
  host.tcp().listen(config_.port, [config, events,
                                   state](net::TcpConnection& conn) {
    if (events.on_connect) events.on_connect(conn.remote_addr());
    auto session = std::make_shared<FtpSession>();
    conn.send_text(config.greeting + "\r\n");

    conn.on_data = [config, events, state, session](
                       net::TcpConnection& conn,
                       std::span<const std::uint8_t> data) {
      session->buffer += util::to_string(data);
      for (;;) {
        const auto newline = session->buffer.find('\n');
        if (newline == std::string::npos) return;
        std::string line = session->buffer.substr(0, newline);
        session->buffer.erase(0, newline + 1);
        while (!line.empty() && line.back() == '\r') line.pop_back();

        if (!session->storing.empty()) {
          if (line == ".") {
            state->files[session->storing] = session->store_buffer;
            if (events.on_store) {
              events.on_store(conn.remote_addr(), session->storing,
                              session->store_buffer);
            }
            session->storing.clear();
            session->store_buffer.clear();
            conn.send_text("226 Transfer complete.\r\n");
          } else {
            session->store_buffer += line + "\n";
          }
          continue;
        }

        const auto command = decode_command(line);
        if (!command) {
          conn.send_text("500 Unknown command.\r\n");
          continue;
        }
        const std::string& verb = command->verb;
        const std::string& arg = command->arg;

        if (verb == "user") {
          session->user = arg;
          conn.send_text("331 Please specify the password.\r\n");
        } else if (verb == "pass") {
          bool ok;
          if (util::to_lower(session->user) == "anonymous") {
            ok = config.auth.allow_anonymous || !config.auth.required;
          } else {
            ok = config.auth.check(session->user, arg);
          }
          session->logged_in = ok;
          if (events.on_login) {
            events.on_login(conn.remote_addr(), session->user, arg, ok);
          }
          conn.send_text(ok ? "230 Login successful.\r\n"
                            : "530 Login incorrect.\r\n");
        } else if (verb == "stor") {
          if (!session->logged_in || !config.writable) {
            conn.send_text("550 Permission denied.\r\n");
          } else {
            session->storing = arg;
            conn.send_text("150 Ok to send data.\r\n");
          }
        } else if (verb == "retr") {
          const auto it = state->files.find(arg);
          if (!session->logged_in || it == state->files.end()) {
            conn.send_text("550 Failed to open file.\r\n");
          } else {
            conn.send_text("150 Opening data connection.\r\n" + it->second +
                           "\r\n226 Transfer complete.\r\n");
          }
        } else if (verb == "list" || verb == "nlst") {
          if (!session->logged_in) {
            conn.send_text("530 Please login with USER and PASS.\r\n");
          } else {
            std::string listing = "150 Here comes the listing.\r\n";
            for (const auto& [name, content] : state->files) {
              listing += name + "\r\n";
            }
            listing += "226 Directory send OK.\r\n";
            conn.send_text(listing);
          }
        } else if (verb == "quit") {
          conn.send_text("221 Goodbye.\r\n");
          conn.close();
          return;
        } else {
          conn.send_text("500 Unknown command.\r\n");
        }
      }
    };
  });
}

}  // namespace ofh::proto::ftp
