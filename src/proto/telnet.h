// Telnet (RFC 854): IAC option negotiation codec, a configurable server
// engine (device consoles and honeypot banners) and an interactive client
// used by brute-force attackers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::telnet {

// Telnet command bytes.
inline constexpr std::uint8_t kIac = 255;
inline constexpr std::uint8_t kDont = 254;
inline constexpr std::uint8_t kDo = 253;
inline constexpr std::uint8_t kWont = 252;
inline constexpr std::uint8_t kWill = 251;
inline constexpr std::uint8_t kSb = 250;
inline constexpr std::uint8_t kSe = 240;

// Common option codes seen in IoT honeypot banners.
inline constexpr std::uint8_t kOptEcho = 1;
inline constexpr std::uint8_t kOptSga = 3;
inline constexpr std::uint8_t kOptTtype = 24;       // 0x18
inline constexpr std::uint8_t kOptNaws = 31;        // 0x1f
inline constexpr std::uint8_t kOptLinemode = 34;

struct Negotiation {
  std::uint8_t verb = 0;    // WILL/WONT/DO/DONT
  std::uint8_t option = 0;
  auto operator<=>(const Negotiation&) const = default;
};

// Splits a raw Telnet byte stream into negotiations and plain text.
// Subnegotiations (IAC SB ... IAC SE) are skipped. Escaped 0xff 0xff is
// unescaped into a literal 0xff data byte.
struct DecodeResult {
  std::vector<Negotiation> negotiations;
  std::string text;
};
DecodeResult decode(std::span<const std::uint8_t> data);

// Encodes a negotiation sequence.
util::Bytes encode_negotiation(std::span<const Negotiation> negotiations);

// Standard refusal replies: DO->WONT, WILL->DONT (a passive client).
std::vector<Negotiation> refuse_all(std::span<const Negotiation> received);

// ------------------------------------------------------------------- server

struct TelnetServerConfig {
  std::uint16_t port = 23;
  // Raw bytes sent immediately on connect (may embed IAC sequences; honeypot
  // signatures like Cowrie's "\xff\xfd\x1flogin:" live here).
  util::Bytes greeting;
  AuthConfig auth;
  std::string login_prompt = "login: ";
  std::string password_prompt = "Password: ";
  // Shell prompt once authenticated (or immediately if auth not required).
  std::string shell_prompt = "$ ";
  std::string login_failed = "Login incorrect\r\n";
  // Canned command responses for the emulated shell.
  std::vector<std::pair<std::string, std::string>> command_responses;
  std::string default_command_response = "-sh: command not found\r\n";
  int max_login_attempts = 3;

  static TelnetServerConfig open_console(std::string prompt,
                                         std::string banner_text = {});
  static TelnetServerConfig login_console(std::string banner_text,
                                          AuthConfig auth);
};

// Session events surfaced to devices/honeypots for logging.
struct TelnetEvents {
  std::function<void(util::Ipv4Addr src)> on_connect;
  std::function<void(util::Ipv4Addr src, const std::string& user,
                     const std::string& pass, bool success)>
      on_login_attempt;
  std::function<void(util::Ipv4Addr src, const std::string& command)>
      on_command;
};

class TelnetServer : public Service {
 public:
  TelnetServer(TelnetServerConfig config, TelnetEvents events = {})
      : config_(std::move(config)), events_(std::move(events)) {}

  void install(net::Host& host) override;
  std::string_view name() const override { return "telnet"; }
  std::uint16_t port() const override { return config_.port; }

  const TelnetServerConfig& config() const { return config_; }

 private:
  TelnetServerConfig config_;
  TelnetEvents events_;
};

// ------------------------------------------------------------------- client

// Interactive Telnet client: answers negotiations, walks the login flow with
// a credential list, then reports shell access. Used by Mirai-style bots.
class TelnetClient {
 public:
  struct Result {
    bool connected = false;
    bool shell = false;                 // reached a shell prompt
    bool login_required = false;        // saw a login prompt
    Credentials used;                   // credentials that worked
    std::string transcript;             // all text received
    int attempts = 0;
  };
  using Callback = std::function<void(const Result&)>;

  // Tries each credential pair in order until one yields a shell. commands
  // are sent once a shell is reached (e.g. a malware dropper one-liner).
  // connect_attempts bounds SYN retries when the connect times out (chaos
  // loss looks like a dead host); refusals are never retried. The default
  // of 1 preserves pre-retry behaviour byte for byte.
  static void run(net::Host& from, util::Ipv4Addr target, std::uint16_t port,
                  std::vector<Credentials> credentials,
                  std::vector<std::string> commands, Callback done,
                  sim::Duration step_timeout = sim::seconds(2),
                  int connect_attempts = 1);
};

}  // namespace ofh::proto::telnet
