#include "proto/ssdp.h"

#include "util/strings.h"

namespace ofh::proto::ssdp {

namespace {

// Parses "Header: value" lines after the start line; returns lowercase keys.
std::map<std::string, std::string> parse_headers(std::string_view text) {
  std::map<std::string, std::string> headers;
  for (const auto& line : util::split(text, '\n')) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const auto key = util::to_lower(util::trim(line.substr(0, colon)));
    const auto value = std::string(util::trim(line.substr(colon + 1)));
    headers[key] = value;
  }
  return headers;
}

}  // namespace

util::Bytes encode_msearch(const MSearch& request) {
  std::string text = "M-SEARCH * HTTP/1.1\r\n";
  text += "HOST: 239.255.255.250:1900\r\n";
  text += "MAN: \"ssdp:discover\"\r\n";
  text += "MX: " + std::to_string(request.mx) + "\r\n";
  text += "ST: " + request.search_target + "\r\n\r\n";
  return util::to_bytes(text);
}

std::optional<MSearch> decode_msearch(std::span<const std::uint8_t> data) {
  const std::string text = util::to_string(data);
  if (!util::starts_with(text, "M-SEARCH")) return std::nullopt;
  const auto headers = parse_headers(text);
  const auto man = headers.find("man");
  if (man == headers.end() || !util::contains(man->second, "ssdp:discover")) {
    return std::nullopt;
  }
  MSearch request;
  if (const auto st = headers.find("st"); st != headers.end()) {
    request.search_target = st->second;
  }
  if (const auto mx = headers.find("mx"); mx != headers.end()) {
    request.mx = static_cast<int>(util::parse_i64(mx->second));
  }
  return request;
}

util::Bytes encode_response(const SearchResponse& response) {
  std::string text = "HTTP/1.1 200 OK\r\n";
  text += "CACHE-CONTROL: max-age=120\r\n";
  text += "ST: " + response.st + "\r\n";
  if (!response.usn.empty()) text += "USN: " + response.usn + "\r\n";
  text += "EXT:\r\n";
  if (!response.server.empty()) text += "SERVER: " + response.server + "\r\n";
  if (!response.location.empty()) {
    text += "LOCATION: " + response.location + "\r\n";
  }
  for (const auto& [key, value] : response.extra) {
    text += key + ": " + value + "\r\n";
  }
  text += "\r\n";
  return util::to_bytes(text);
}

std::optional<SearchResponse> decode_response(
    std::span<const std::uint8_t> data) {
  const std::string text = util::to_string(data);
  if (!util::starts_with(text, "HTTP/1.1 200")) return std::nullopt;
  const auto headers = parse_headers(text);
  SearchResponse response;
  const auto get = [&headers](const char* key) {
    const auto it = headers.find(key);
    return it == headers.end() ? std::string{} : it->second;
  };
  response.usn = get("usn");
  response.server = get("server");
  response.location = get("location");
  response.st = get("st");
  for (const auto& [key, value] : headers) {
    if (key != "usn" && key != "server" && key != "location" && key != "st" &&
        key != "cache-control" && key != "ext") {
      response.extra[key] = value;
    }
  }
  return response;
}

SearchResponse UpnpDevice::make_response(util::Ipv4Addr self) const {
  SearchResponse response;
  response.usn = "uuid:" + config_.uuid + "::upnp:rootdevice";
  response.server = config_.server;
  response.location = "http://" + self.to_string() + ":" +
                      std::to_string(config_.description_port) +
                      "/rootDesc.xml";
  if (!config_.friendly_name.empty()) {
    response.extra["Friendly Name"] = config_.friendly_name;
  }
  if (!config_.model_name.empty()) {
    response.extra["Model Name"] = config_.model_name;
  }
  if (!config_.manufacturer.empty()) {
    response.extra["Manufacturer"] = config_.manufacturer;
  }
  return response;
}

void UpnpDevice::install(net::Host& host) {
  auto config = config_;
  auto events = events_;
  auto self = this;
  net::Host* host_ptr = &host;
  host.udp().bind(config_.port, [config, events, self, host_ptr](
                                    const net::Datagram& datagram) {
    const auto request = decode_msearch(datagram.payload);
    if (!request) return;
    if (!config.respond_to_any) return;
    if (events.on_search) events.on_search(datagram.src, request->search_target);

    if (!config.disclose_details) {
      // Hardened device: minimal single response, no identifying headers,
      // no amplification value.
      SearchResponse minimal;
      minimal.st = request->search_target;
      host_ptr->udp().send(datagram.src, datagram.src_port,
                           encode_response(minimal), config.port);
      return;
    }
    const auto response =
        encode_response(self->make_response(host_ptr->address()));
    for (int i = 0; i < config.responses_per_search; ++i) {
      host_ptr->udp().send(datagram.src, datagram.src_port, response,
                           config.port);
    }
  });
}

}  // namespace ofh::proto::ssdp
