// XMPP (RFC 6120, simplified): stream open, stream:features advertising SASL
// mechanisms (PLAIN / ANONYMOUS / SCRAM-SHA-1) and optional STARTTLS, SASL
// auth exchange, and message stanzas. The banner the scanner classifies is
// the features element: MECHANISM <PLAIN> => "no encryption",
// MECHANISM <ANONYMOUS> => "no auth" (paper Table 2).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::xmpp {

// Minimal XML helpers (tag scanning, not a general parser).
std::optional<std::string> extract_element(std::string_view xml,
                                           std::string_view tag);
std::vector<std::string> extract_all_elements(std::string_view xml,
                                              std::string_view tag);
std::optional<std::string> extract_attribute(std::string_view xml,
                                             std::string_view tag,
                                             std::string_view attribute);

std::string stream_open(std::string_view from_domain);
std::string stream_features(const std::vector<std::string>& mechanisms,
                            bool starttls_required);
std::string sasl_auth(std::string_view mechanism, std::string_view payload);
std::string sasl_success();
std::string sasl_failure(std::string_view condition);
std::string message_stanza(std::string_view to, std::string_view body);

// ------------------------------------------------------------------- server

struct XmppServerConfig {
  std::uint16_t client_port = 5222;
  std::uint16_t server_port = 5269;
  std::string domain = "example.net";
  AuthConfig auth;
  bool starttls_required = false;  // false => non-TLS allowed (misconfig)
  // Mechanisms advertised; derived from auth if empty.
  std::vector<std::string> mechanisms;
};

struct XmppEvents {
  std::function<void(util::Ipv4Addr)> on_stream_open;
  std::function<void(util::Ipv4Addr, const std::string& mechanism, bool ok)>
      on_auth;
  std::function<void(util::Ipv4Addr, const std::string& to,
                     const std::string& body)>
      on_message;
};

class XmppServer : public Service {
 public:
  explicit XmppServer(XmppServerConfig config, XmppEvents events = {});

  void install(net::Host& host) override;
  std::string_view name() const override { return "xmpp"; }
  std::uint16_t port() const override { return config_.client_port; }

  const XmppServerConfig& config() const { return config_; }
  std::vector<std::string> advertised_mechanisms() const;

 private:
  XmppServerConfig config_;
  XmppEvents events_;
};

}  // namespace ofh::proto::xmpp
