// SSDP (UPnP discovery) over UDP 1900: HTTPU M-SEARCH requests and
// responses, NOTIFY advertisements, plus a UPnP device engine that answers
// "ssdp:discover" with the USN/SERVER/LOCATION headers the paper's scan
// classifies (Table 3) and that reflection attacks abuse.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::ssdp {

struct MSearch {
  std::string search_target = "ssdp:all";  // ST header
  int mx = 1;
};
util::Bytes encode_msearch(const MSearch& request);
std::optional<MSearch> decode_msearch(std::span<const std::uint8_t> data);

struct SearchResponse {
  std::string usn;       // unique service name, e.g. "uuid:...::upnp:rootdevice"
  std::string server;    // e.g. "Ubuntu/lucid UPnP/1.0 MiniUPnPd/1.4"
  std::string location;  // device description URL
  std::string st = "upnp:rootdevice";
  // Extra headers (Friendly Name / Model Name are carried in the device
  // description in real UPnP; devices here inline them so a single probe
  // reveals them, matching the information content the paper tags on).
  std::map<std::string, std::string> extra;
};
util::Bytes encode_response(const SearchResponse& response);
std::optional<SearchResponse> decode_response(
    std::span<const std::uint8_t> data);

// ------------------------------------------------------------------- device

struct UpnpDeviceConfig {
  std::uint16_t port = 1900;
  std::string uuid = "5a34308c-1a2c-4546-ac5d-7663dd01dca1";
  std::string server = "Ubuntu/lucid UPnP/1.0 MiniUPnPd/1.4";
  std::string friendly_name;
  std::string model_name;
  std::string manufacturer;
  std::uint16_t description_port = 16537;
  // Devices that answer M-SEARCH from any source are reflection resources.
  bool respond_to_any = true;
  // Misconfigured devices disclose USN/SERVER/LOCATION/model headers (the
  // Table 3 indicator) and answer multiple times; hardened devices answer
  // with a minimal ST-only response.
  bool disclose_details = true;
  // Number of duplicate responses per search (root device + embedded
  // devices + services); multiplies amplification.
  int responses_per_search = 1;
};

struct UpnpEvents {
  std::function<void(util::Ipv4Addr, const std::string& st)> on_search;
};

class UpnpDevice : public Service {
 public:
  explicit UpnpDevice(UpnpDeviceConfig config, UpnpEvents events = {})
      : config_(std::move(config)), events_(std::move(events)) {}

  void install(net::Host& host) override;
  std::string_view name() const override { return "upnp"; }
  std::uint16_t port() const override { return config_.port; }

  const UpnpDeviceConfig& config() const { return config_; }
  SearchResponse make_response(util::Ipv4Addr self) const;

 private:
  UpnpDeviceConfig config_;
  UpnpEvents events_;
};

}  // namespace ofh::proto::ssdp
