#include "proto/mqtt.h"

#include <map>

#include "util/strings.h"

namespace ofh::proto::mqtt {

std::optional<FixedHeader> decode_fixed_header(
    std::span<const std::uint8_t> data) {
  util::ByteReader reader(data);
  const auto first = reader.u8();
  if (!first) return std::nullopt;
  const auto type = *first >> 4;
  if (type < 1 || type > 14) return std::nullopt;
  // Remaining length: up to 4 base-128 digits, little-endian, msb=continue.
  const auto remaining_length = reader.varu32(4);
  if (!remaining_length) return std::nullopt;

  FixedHeader header;
  header.type = static_cast<PacketType>(type);
  header.flags = *first & 0x0f;
  header.remaining_length = *remaining_length;
  header.header_size = reader.position();
  return header;
}

util::Bytes encode_packet(PacketType type, std::uint8_t flags,
                          std::span<const std::uint8_t> body) {
  util::ByteWriter out;
  out.u8(static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(type) << 4) | (flags & 0x0f)));
  out.varu32(static_cast<std::uint32_t>(body.size()));
  out.raw(body);
  return out.take();
}

util::Bytes encode_connect(const ConnectPacket& packet) {
  util::ByteWriter body;
  body.str16("MQTT").u8(4);  // protocol level 4 = 3.1.1
  std::uint8_t connect_flags = 0;
  if (packet.clean_session) connect_flags |= 0x02;
  if (packet.username) connect_flags |= 0x80;
  if (packet.password) connect_flags |= 0x40;
  body.u8(connect_flags).u16(packet.keep_alive).str16(packet.client_id);
  if (packet.username) body.str16(*packet.username);
  if (packet.password) body.str16(*packet.password);
  return encode_packet(PacketType::kConnect, 0, body.bytes());
}

std::optional<ConnectPacket> decode_connect(
    std::span<const std::uint8_t> body) {
  util::ByteReader reader(body);
  const auto protocol = reader.str16();
  if (!protocol || (*protocol != "MQTT" && *protocol != "MQIsdp")) {
    return std::nullopt;
  }
  const auto level = reader.u8();
  const auto flags = reader.u8();
  const auto keep_alive = reader.u16();
  const auto client_id = reader.str16();
  if (!level || !flags || !keep_alive || !client_id) return std::nullopt;

  ConnectPacket packet;
  packet.client_id = *client_id;
  packet.clean_session = (*flags & 0x02) != 0;
  packet.keep_alive = *keep_alive;
  if (*flags & 0x04) {  // will flag: skip will topic + message
    if (!reader.str16() || !reader.str16()) return std::nullopt;
  }
  if (*flags & 0x80) {
    auto username = reader.str16();
    if (!username) return std::nullopt;
    packet.username = std::move(*username);
  }
  if (*flags & 0x40) {
    auto password = reader.str16();
    if (!password) return std::nullopt;
    packet.password = std::move(*password);
  }
  return packet;
}

util::Bytes encode_connack(ConnectCode code, bool session_present) {
  util::ByteWriter body;
  body.u8(session_present ? 1 : 0).u8(static_cast<std::uint8_t>(code));
  return encode_packet(PacketType::kConnack, 0, body.bytes());
}

std::optional<ConnectCode> decode_connack(
    std::span<const std::uint8_t> body) {
  if (body.size() < 2 || body[1] > 5) return std::nullopt;
  return static_cast<ConnectCode>(body[1]);
}

util::Bytes encode_publish(const PublishPacket& packet) {
  util::ByteWriter body;
  body.str16(packet.topic).raw(packet.payload);
  return encode_packet(PacketType::kPublish, packet.retain ? 0x01 : 0x00,
                       body.bytes());
}

std::optional<PublishPacket> decode_publish(std::span<const std::uint8_t> body,
                                            std::uint8_t flags) {
  util::ByteReader reader(body);
  auto topic = reader.str16();
  if (!topic) return std::nullopt;
  const std::uint8_t qos = (flags >> 1) & 0x03;
  if (qos > 0 && !reader.u16()) return std::nullopt;  // packet identifier
  PublishPacket packet;
  packet.topic = std::move(*topic);
  packet.retain = (flags & 0x01) != 0;
  const auto rest = reader.rest();
  packet.payload.assign(rest.begin(), rest.end());
  return packet;
}

util::Bytes encode_subscribe(const SubscribePacket& packet) {
  util::ByteWriter body;
  body.u16(packet.packet_id);
  for (const auto& filter : packet.topic_filters) {
    body.str16(filter).u8(0);  // requested QoS 0
  }
  return encode_packet(PacketType::kSubscribe, 0x02, body.bytes());
}

std::optional<SubscribePacket> decode_subscribe(
    std::span<const std::uint8_t> body) {
  util::ByteReader reader(body);
  const auto packet_id = reader.u16();
  if (!packet_id) return std::nullopt;
  SubscribePacket packet;
  packet.packet_id = *packet_id;
  while (!reader.done()) {
    auto filter = reader.str16();
    if (!filter || !reader.u8()) return std::nullopt;
    packet.topic_filters.push_back(std::move(*filter));
  }
  if (packet.topic_filters.empty()) return std::nullopt;
  return packet;
}

util::Bytes encode_suback(std::uint16_t packet_id, std::size_t topic_count) {
  util::ByteWriter body;
  body.u16(packet_id);
  for (std::size_t i = 0; i < topic_count; ++i) body.u8(0);  // granted QoS 0
  return encode_packet(PacketType::kSuback, 0, body.bytes());
}

bool topic_matches(std::string_view filter, std::string_view topic) {
  const auto filter_parts = util::split(filter, '/');
  const auto topic_parts = util::split(topic, '/');
  std::size_t i = 0;
  for (; i < filter_parts.size(); ++i) {
    if (filter_parts[i] == "#") return true;  // matches remainder (incl. none)
    if (i >= topic_parts.size()) return false;
    if (filter_parts[i] == "+") continue;
    if (filter_parts[i] != topic_parts[i]) return false;
  }
  return i == topic_parts.size();
}

// ------------------------------------------------------------------- broker

struct Broker::State {
  // topic -> retained payload
  std::map<std::string, std::string> topics;
  std::size_t session_count = 0;
};

namespace {

struct BrokerSession {
  bool connected = false;          // CONNECT accepted
  util::Bytes inbox;               // reassembly buffer
  std::vector<std::string> filters;
};

}  // namespace

Broker::Broker(BrokerConfig config, BrokerEvents events)
    : config_(std::move(config)),
      events_(std::move(events)),
      state_(std::make_shared<State>()) {
  for (const auto& [topic, payload] : config_.retained) {
    state_->topics[topic] = payload;
  }
  if (config_.expose_sys_topics) {
    state_->topics["$SYS/broker/version"] =
        config_.server_name + " version " + config_.version;
    state_->topics["$SYS/broker/uptime"] = "86400 seconds";
    state_->topics["$SYS/broker/clients/total"] = "3";
  }
}

std::size_t Broker::session_count() const { return state_->session_count; }

std::optional<std::string> Broker::retained(const std::string& topic) const {
  const auto it = state_->topics.find(topic);
  if (it == state_->topics.end()) return std::nullopt;
  return it->second;
}

void Broker::install(net::Host& host) {
  auto config = config_;
  auto events = events_;
  auto state = state_;
  host.tcp().listen(config_.port, [config, events,
                                   state](net::TcpConnection& conn) {
    auto session = std::make_shared<BrokerSession>();
    ++state->session_count;

    conn.on_close = [state](net::TcpConnection&) {
      if (state->session_count > 0) --state->session_count;
    };

    conn.on_data = [config, events, state, session](
                       net::TcpConnection& conn,
                       std::span<const std::uint8_t> data) {
      auto& inbox = session->inbox;
      inbox.insert(inbox.end(), data.begin(), data.end());

      for (;;) {
        const auto header = decode_fixed_header(inbox);
        if (!header) return;  // need more bytes
        const std::size_t frame_size =
            header->header_size + header->remaining_length;
        if (inbox.size() < frame_size) return;
        const auto body = std::span<const std::uint8_t>(inbox).subspan(
            header->header_size, header->remaining_length);

        switch (header->type) {
          case PacketType::kConnect: {
            const auto connect = decode_connect(body);
            ConnectCode code = ConnectCode::kAccepted;
            if (!connect) {
              code = ConnectCode::kUnacceptableProtocol;
            } else if (config.auth.required) {
              const bool ok =
                  connect->username && connect->password &&
                  config.auth.check(*connect->username, *connect->password);
              if (!ok) {
                code = connect->username ? ConnectCode::kBadCredentials
                                         : ConnectCode::kNotAuthorized;
              }
            }
            if (events.on_connect) events.on_connect(conn.remote_addr(), code);
            conn.send(encode_connack(code));
            if (code == ConnectCode::kAccepted) {
              session->connected = true;
            } else {
              conn.close();
              return;
            }
            break;
          }
          case PacketType::kPublish: {
            if (!session->connected) break;
            const auto publish = decode_publish(body, header->flags);
            if (publish) {
              if (events.on_topic_access) {
                events.on_topic_access(conn.remote_addr(), publish->topic,
                                       /*write=*/true);
              }
              // Data poisoning: any connected client may overwrite retained
              // topic state when the broker is misconfigured.
              state->topics[publish->topic] =
                  util::to_string(publish->payload);
            }
            break;
          }
          case PacketType::kSubscribe: {
            if (!session->connected) break;
            const auto subscribe = decode_subscribe(body);
            if (subscribe) {
              conn.send(encode_suback(subscribe->packet_id,
                                      subscribe->topic_filters.size()));
              for (const auto& filter : subscribe->topic_filters) {
                if (events.on_topic_access) {
                  events.on_topic_access(conn.remote_addr(), filter,
                                         /*write=*/false);
                }
                session->filters.push_back(filter);
                // Deliver matching retained messages immediately.
                for (const auto& [topic, payload] : state->topics) {
                  if (topic_matches(filter, topic)) {
                    PublishPacket out;
                    out.topic = topic;
                    out.payload = util::to_bytes(payload);
                    out.retain = true;
                    conn.send(encode_publish(out));
                  }
                }
              }
            }
            break;
          }
          case PacketType::kUnsubscribe: {
            if (!session->connected) break;
            util::ByteReader reader(body);
            const auto packet_id = reader.u16();
            if (packet_id) {
              while (!reader.done()) {
                const auto filter = reader.str16();
                if (!filter) break;
                auto& filters = session->filters;
                filters.erase(
                    std::remove(filters.begin(), filters.end(), *filter),
                    filters.end());
              }
              util::ByteWriter ack;
              ack.u16(*packet_id);
              conn.send(encode_packet(PacketType::kUnsuback, 0, ack.bytes()));
            }
            break;
          }
          case PacketType::kPingreq:
            conn.send(encode_packet(PacketType::kPingresp, 0, {}));
            break;
          case PacketType::kDisconnect:
            inbox.clear();
            conn.close();
            return;
          default:
            break;
        }
        inbox.erase(inbox.begin(),
                    inbox.begin() + static_cast<std::ptrdiff_t>(frame_size));
      }
    };
  });
}

}  // namespace ofh::proto::mqtt
