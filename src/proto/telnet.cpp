#include "proto/telnet.h"

#include "obs/trace.h"
#include "util/strings.h"

namespace ofh::proto::telnet {

DecodeResult decode(std::span<const std::uint8_t> data) {
  DecodeResult out;
  util::ByteReader reader(data);
  while (!reader.done()) {
    const std::uint8_t byte = *reader.u8();
    if (byte != kIac) {
      out.text.push_back(static_cast<char>(byte));
      continue;
    }
    const auto command = reader.u8();
    if (!command) break;  // trailing lone IAC: drop
    if (*command == kIac) {  // escaped literal 0xff
      out.text.push_back(static_cast<char>(kIac));
    } else if (*command == kSb) {
      // Skip to IAC SE; a subnegotiation cut off by the end of the buffer
      // drops the remainder.
      for (;;) {
        const auto sub = reader.u8();
        if (!sub) return out;
        if (*sub != kIac) continue;
        const auto next = reader.peek_u8();
        if (!next) return out;
        if (*next == kSe) {
          reader.skip(1);
          break;
        }
      }
    } else if (*command >= kWill && *command <= kDont) {
      const auto option = reader.u8();
      if (!option) break;  // truncated negotiation: drop
      out.negotiations.push_back({*command, *option});
    }
    // Anything else is a two-byte command (NOP, GA, ...): already consumed.
  }
  return out;
}

util::Bytes encode_negotiation(std::span<const Negotiation> negotiations) {
  util::Bytes out;
  out.reserve(negotiations.size() * 3);
  for (const auto& negotiation : negotiations) {
    out.push_back(kIac);
    out.push_back(negotiation.verb);
    out.push_back(negotiation.option);
  }
  return out;
}

std::vector<Negotiation> refuse_all(std::span<const Negotiation> received) {
  std::vector<Negotiation> replies;
  for (const auto& negotiation : received) {
    if (negotiation.verb == kDo) {
      replies.push_back({kWont, negotiation.option});
    } else if (negotiation.verb == kWill) {
      replies.push_back({kDont, negotiation.option});
    }
  }
  return replies;
}

// ------------------------------------------------------------------- server

TelnetServerConfig TelnetServerConfig::open_console(std::string prompt,
                                                    std::string banner_text) {
  TelnetServerConfig config;
  config.auth = AuthConfig::open();
  config.shell_prompt = std::move(prompt);
  config.greeting = util::to_bytes(banner_text);
  return config;
}

TelnetServerConfig TelnetServerConfig::login_console(std::string banner_text,
                                                     AuthConfig auth) {
  TelnetServerConfig config;
  config.auth = std::move(auth);
  config.greeting = util::to_bytes(banner_text);
  return config;
}

namespace {

enum class SessionState { kLogin, kPassword, kShell };

struct Session {
  SessionState state = SessionState::kShell;
  std::string line_buffer;
  std::string user;
  int attempts = 0;
};

}  // namespace

void TelnetServer::install(net::Host& host) {
  // The accept handler owns per-session state via a shared_ptr captured by
  // the connection callbacks.
  auto config = config_;
  auto events = events_;
  host.tcp().listen(config_.port, [config, events](net::TcpConnection& conn) {
    if (events.on_connect) events.on_connect(conn.remote_addr());

    auto session = std::make_shared<Session>();

    // Greeting: raw banner bytes, then either a login prompt or a shell
    // prompt depending on the auth posture.
    util::Bytes hello = config.greeting;
    if (config.auth.required) {
      session->state = SessionState::kLogin;
      const auto prompt = util::to_bytes(config.login_prompt);
      hello.insert(hello.end(), prompt.begin(), prompt.end());
    } else {
      session->state = SessionState::kShell;
      const auto prompt = util::to_bytes(config.shell_prompt);
      hello.insert(hello.end(), prompt.begin(), prompt.end());
    }
    conn.send(std::move(hello));

    conn.on_data = [config, events, session](
                       net::TcpConnection& conn,
                       std::span<const std::uint8_t> data) {
      const DecodeResult decoded = decode(data);
      // Refuse client option requests like a minimal device console.
      const auto replies = refuse_all(decoded.negotiations);
      if (!replies.empty()) conn.send(encode_negotiation(replies));

      session->line_buffer += decoded.text;
      for (;;) {
        const auto newline = session->line_buffer.find('\n');
        if (newline == std::string::npos) return;
        std::string line = session->line_buffer.substr(0, newline);
        session->line_buffer.erase(0, newline + 1);
        while (!line.empty() && (line.back() == '\r' || line.back() == '\0')) {
          line.pop_back();
        }

        switch (session->state) {
          case SessionState::kLogin:
            session->user = line;
            session->state = SessionState::kPassword;
            conn.send_text(config.password_prompt);
            break;
          case SessionState::kPassword: {
            const bool ok = config.auth.check(session->user, line);
            ++session->attempts;
            if (events.on_login_attempt) {
              events.on_login_attempt(conn.remote_addr(), session->user, line,
                                      ok);
            }
            if (ok) {
              session->state = SessionState::kShell;
              conn.send_text("\r\n" + config.shell_prompt);
            } else if (session->attempts >= config.max_login_attempts) {
              conn.send_text(config.login_failed);
              conn.close();
              return;
            } else {
              session->state = SessionState::kLogin;
              conn.send_text(config.login_failed + config.login_prompt);
            }
            break;
          }
          case SessionState::kShell: {
            if (line.empty()) {
              conn.send_text(config.shell_prompt);
              break;
            }
            if (events.on_command) events.on_command(conn.remote_addr(), line);
            if (line == "exit" || line == "quit" || line == "logout") {
              conn.close();
              return;
            }
            std::string response = config.default_command_response;
            for (const auto& [command, canned] : config.command_responses) {
              if (util::starts_with(line, command)) {
                response = canned;
                break;
              }
            }
            conn.send_text(response + config.shell_prompt);
            break;
          }
        }
      }
    };
  });
}

// ------------------------------------------------------------------- client

namespace {

struct ClientSession {
  TelnetClient::Result result;
  std::vector<Credentials> credentials;
  std::vector<std::string> commands;
  std::size_t cred_index = 0;
  std::size_t command_index = 0;
  std::string window;  // text since last action
  bool sent_user = false;
  bool done = false;
  TelnetClient::Callback callback;

  void finish() {
    if (done) return;
    done = true;
    if (callback) callback(result);
  }
};

bool looks_like_login_prompt(const std::string& text) {
  return util::icontains(text, "login:") || util::icontains(text, "user:") ||
         util::icontains(text, "username:");
}

bool looks_like_password_prompt(const std::string& text) {
  return util::icontains(text, "assword:");
}

bool looks_like_shell_prompt(const std::string& text) {
  const auto trimmed = util::trim(text);
  if (trimmed.empty()) return false;
  const char last = trimmed.back();
  return last == '$' || last == '#' || last == '>';
}

// One connect attempt; recurses (bounded by connect_attempts) when the SYN
// times out, since under fault injection a lost SYN is indistinguishable
// from a dead host. A refusal is an answer and ends the session at once.
// trace_id is the session's causal id, re-published across the retry timer.
void client_connect(net::Host& from, util::Ipv4Addr target, std::uint16_t port,
                    std::shared_ptr<ClientSession> session,
                    sim::Duration step_timeout, int attempt,
                    int connect_attempts, std::uint64_t trace_id) {
  from.tcp().connect_ex(target, port, [session, &from, target, port,
                                       step_timeout, attempt, connect_attempts,
                                       trace_id](net::TcpConnection* conn,
                                                 net::ConnectOutcome outcome) {
    if (conn == nullptr) {
      if (outcome == net::ConnectOutcome::kTimeout &&
          attempt < connect_attempts) {
        from.sim().after(step_timeout / 2, [&from, target, port, session,
                                            step_timeout, attempt,
                                            connect_attempts, trace_id] {
          const obs::TraceContext trace_context(trace_id);
          client_connect(from, target, port, session, step_timeout,
                         attempt + 1, connect_attempts, trace_id);
        });
        return;
      }
      session->finish();
      return;
    }
    session->result.connected = true;

    // Periodic "turn" evaluation: Telnet output arrives in fragments, so we
    // act on the accumulated window on a timer rather than per packet.
    auto act = std::make_shared<std::function<void(net::TcpConnection&)>>();
    *act = [session](net::TcpConnection& conn) {
      if (session->done) return;
      const std::string& window = session->window;
      if (looks_like_password_prompt(window)) {
        session->window.clear();
        if (session->cred_index < session->credentials.size()) {
          conn.send_text(session->credentials[session->cred_index].pass +
                         "\r\n");
        } else {
          conn.close();
          session->finish();
        }
        return;
      }
      if (looks_like_login_prompt(window)) {
        session->result.login_required = true;
        session->window.clear();
        if (session->sent_user) {
          // A fresh login prompt after we sent credentials = failure.
          ++session->cred_index;
          ++session->result.attempts;
        }
        if (session->cred_index < session->credentials.size()) {
          session->sent_user = true;
          conn.send_text(session->credentials[session->cred_index].user +
                         "\r\n");
        } else {
          conn.close();
          session->finish();
        }
        return;
      }
      if (looks_like_shell_prompt(window)) {
        session->window.clear();
        if (!session->result.shell) {
          session->result.shell = true;
          if (session->sent_user &&
              session->cred_index < session->credentials.size()) {
            session->result.used = session->credentials[session->cred_index];
            ++session->result.attempts;
          }
        }
        if (session->command_index < session->commands.size()) {
          conn.send_text(session->commands[session->command_index++] + "\r\n");
        } else {
          conn.send_text("exit\r\n");
          session->finish();
        }
        return;
      }
    };

    net::TcpStack* stack = &from.tcp();
    const net::ConnKey key{conn->local_port(), conn->remote_addr(),
                           conn->remote_port()};
    conn->on_data = [session, act, &from, stack, key, step_timeout](
                        net::TcpConnection& conn,
                        std::span<const std::uint8_t> data) {
      const DecodeResult decoded = decode(data);
      const auto replies = refuse_all(decoded.negotiations);
      if (!replies.empty()) conn.send(encode_negotiation(replies));
      session->window += decoded.text;
      session->result.transcript += decoded.text;
      // Give the server a beat to finish its burst, then evaluate. The
      // connection is re-resolved by key: it may be gone by then.
      from.sim().after(step_timeout / 4, [session, act, stack, key] {
        if (session->done) return;
        net::TcpConnection* live = stack->lookup(key);
        if (live != nullptr && live->established()) (*act)(*live);
      });
    };
    conn->on_close = [session](net::TcpConnection&) { session->finish(); };

    // Overall safety timeout.
    from.sim().after(step_timeout * 20, [session] { session->finish(); });
  });
}

}  // namespace

void TelnetClient::run(net::Host& from, util::Ipv4Addr target,
                       std::uint16_t port,
                       std::vector<Credentials> credentials,
                       std::vector<std::string> commands, Callback done,
                       sim::Duration step_timeout, int connect_attempts) {
  auto session = std::make_shared<ClientSession>();
  session->credentials = std::move(credentials);
  session->commands = std::move(commands);
  session->callback = std::move(done);
  client_connect(from, target, port, std::move(session), step_timeout,
                 /*attempt=*/1, connect_attempts, obs::current_trace_id());
}

}  // namespace ofh::proto::telnet
