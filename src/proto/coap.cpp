#include "proto/coap.h"

#include "util/strings.h"

namespace ofh::proto::coap {

std::string Message::uri_path() const {
  std::string path;
  for (const auto& option : options) {
    if (option.number == kOptionUriPath) {
      path += "/";
      path += util::to_string(option.value);
    }
  }
  return path;
}

void Message::set_uri_path(std::string_view path) {
  for (const auto& segment : util::split(path, '/')) {
    if (segment.empty()) continue;
    options.push_back(Option{kOptionUriPath, util::to_bytes(segment)});
  }
}

util::Bytes encode(const Message& message) {
  util::ByteWriter out;
  const std::uint8_t tkl = static_cast<std::uint8_t>(message.token.size());
  out.u8(static_cast<std::uint8_t>(
      (1u << 6) | (static_cast<std::uint8_t>(message.type) << 4) | tkl));
  out.u8(static_cast<std::uint8_t>(message.code));
  out.u16(message.message_id);
  out.raw(message.token);

  // Options must be sorted by number for delta encoding.
  auto options = message.options;
  std::stable_sort(options.begin(), options.end(),
                   [](const Option& a, const Option& b) {
                     return a.number < b.number;
                   });
  std::uint16_t previous = 0;
  for (const auto& option : options) {
    const std::uint16_t delta = option.number - previous;
    previous = option.number;
    const std::size_t length = option.value.size();
    const auto nibble = [](std::size_t v) -> std::uint8_t {
      if (v < 13) return static_cast<std::uint8_t>(v);
      if (v < 269) return 13;
      return 14;
    };
    out.u8(static_cast<std::uint8_t>((nibble(delta) << 4) | nibble(length)));
    if (nibble(delta) == 13) out.u8(static_cast<std::uint8_t>(delta - 13));
    if (nibble(delta) == 14) out.u16(static_cast<std::uint16_t>(delta - 269));
    if (nibble(length) == 13) out.u8(static_cast<std::uint8_t>(length - 13));
    if (nibble(length) == 14) {
      out.u16(static_cast<std::uint16_t>(length - 269));
    }
    out.raw(option.value);
  }
  if (!message.payload.empty()) {
    out.u8(0xff);
    out.raw(message.payload);
  }
  return out.take();
}

std::optional<Message> decode(std::span<const std::uint8_t> data) {
  util::ByteReader reader(data);
  const auto first = reader.u8();
  const auto code = reader.u8();
  const auto message_id = reader.u16();
  if (!first || !code || !message_id) return std::nullopt;
  if ((*first >> 6) != 1) return std::nullopt;  // version must be 1

  Message message;
  message.type = static_cast<Type>((*first >> 4) & 0x03);
  message.code = static_cast<Code>(*code);
  message.message_id = *message_id;
  const std::uint8_t tkl = *first & 0x0f;
  if (tkl > 8) return std::nullopt;
  const auto token = reader.raw(tkl);
  if (!token) return std::nullopt;
  message.token.assign(token->begin(), token->end());

  std::uint16_t number = 0;
  while (!reader.done()) {
    const auto byte = reader.u8();
    if (!byte) return std::nullopt;
    if (*byte == 0xff) {
      const auto rest = reader.rest();
      if (rest.empty()) return std::nullopt;  // marker with no payload
      message.payload.assign(rest.begin(), rest.end());
      break;
    }
    std::uint32_t delta = *byte >> 4;
    std::uint32_t length = *byte & 0x0f;
    const auto extend = [&reader](std::uint32_t& v) -> bool {
      if (v == 13) {
        const auto ext = reader.u8();
        if (!ext) return false;
        v = *ext + 13;
      } else if (v == 14) {
        const auto ext = reader.u16();
        if (!ext) return false;
        v = *ext + 269;
      } else if (v == 15) {
        return false;
      }
      return true;
    };
    if (!extend(delta) || !extend(length)) return std::nullopt;
    number = static_cast<std::uint16_t>(number + delta);
    const auto value = reader.raw(length);
    if (!value) return std::nullopt;
    message.options.push_back(
        Option{number, util::Bytes(value->begin(), value->end())});
  }
  return message;
}

Message make_discovery_request(std::uint16_t message_id) {
  Message request;
  request.type = Type::kConfirmable;
  request.code = Code::kGet;
  request.message_id = message_id;
  request.set_uri_path("/.well-known/core");
  return request;
}

// ------------------------------------------------------------------- server

struct CoapServer::State {
  std::map<std::string, Resource> resources;  // keyed by "/path"
};

CoapServer::CoapServer(CoapServerConfig config, CoapEvents events)
    : config_(std::move(config)),
      events_(std::move(events)),
      state_(std::make_shared<State>()) {
  for (const auto& resource : config_.resources) {
    state_->resources["/" + resource.path] = resource;
  }
}

std::optional<std::string> CoapServer::resource_value(
    const std::string& path) const {
  const auto it = state_->resources.find(
      path.starts_with('/') ? path : "/" + path);
  if (it == state_->resources.end()) return std::nullopt;
  return it->second.value;
}

std::string CoapServer::link_format() const {
  std::string body;
  for (const auto& [path, resource] : state_->resources) {
    if (!body.empty()) body += ",";
    body += "<" + path + ">";
    if (!resource.resource_type.empty()) {
      body += ";rt=\"" + resource.resource_type + "\"";
    }
  }
  body.append(config_.discovery_padding, ' ');
  return body;
}

void CoapServer::install(net::Host& host) {
  auto config = config_;
  auto events = events_;
  auto state = state_;
  auto self = this;
  net::Host* host_ptr = &host;
  host.udp().bind(config_.port, [config, events, state, self, host_ptr](
                                    const net::Datagram& datagram) {
    const auto request = decode(datagram.payload);
    if (!request) return;

    Message response;
    response.type = request->type == Type::kConfirmable
                        ? Type::kAcknowledgement
                        : Type::kNonConfirmable;
    response.message_id = request->message_id;
    response.token = request->token;

    const std::string path = request->uri_path();
    if (path == "/.well-known/core") {
      if (!config.expose_discovery) {
        response.code = Code::kUnauthorized;  // answers, but discloses nothing
      } else {
        response.code = Code::kContent;
        response.options.push_back(
            Option{kOptionContentFormat, {40}});  // application/link-format
        response.payload = util::to_bytes(self->link_format());
      }
    } else if (!config.open_access) {
      response.code = Code::kUnauthorized;
    } else {
      const auto it = state->resources.find(path);
      if (it == state->resources.end()) {
        response.code = Code::kNotFound;
      } else if (request->code == Code::kGet) {
        response.code = Code::kContent;
        response.payload = util::to_bytes(it->second.value);
      } else if (request->code == Code::kPut ||
                 request->code == Code::kPost) {
        if (it->second.writable) {
          it->second.value = util::to_string(request->payload);
          response.code = Code::kChanged;
        } else {
          response.code = Code::kUnauthorized;
        }
      } else if (request->code == Code::kDelete) {
        if (it->second.writable) {
          state->resources.erase(it);
          response.code = Code::kDeleted;
        } else {
          response.code = Code::kUnauthorized;
        }
      } else {
        response.code = Code::kBadRequest;
      }
    }

    if (events.on_request) {
      events.on_request(datagram.src, path, response.code);
    }
    // Reply to the (possibly spoofed) source — this asymmetry is exactly
    // what reflection attacks exploit.
    host_ptr->udp().send(datagram.src, datagram.src_port, encode(response),
                         config.port);
  });
}

}  // namespace ofh::proto::coap
