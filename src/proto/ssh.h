// SSH (simplified): the identification-string exchange is byte-accurate
// ("SSH-2.0-..." banners are what honeypot fingerprinting keys on, e.g.
// Kippo's "SSH-2.0-OpenSSH_5.1p1 Debian-5"). The post-banner key exchange
// is replaced by a compact cleartext auth record — both endpoints are ours,
// and the measurements only need auth attempts/results, not cryptography.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::ssh {

// Auth record: "AUTH <user> <pass>\n"; replies "OK\n" / "FAIL\n".
util::Bytes encode_auth(std::string_view user, std::string_view pass);
std::optional<Credentials> decode_auth(std::string_view line);

struct SshServerConfig {
  std::uint16_t port = 22;
  std::string banner = "SSH-2.0-OpenSSH_7.9p1 Debian-10+deb10u2";
  AuthConfig auth;
  int max_attempts = 6;
};

struct SshEvents {
  std::function<void(util::Ipv4Addr)> on_connect;
  std::function<void(util::Ipv4Addr, const std::string& user,
                     const std::string& pass, bool ok)>
      on_auth;
  std::function<void(util::Ipv4Addr, const std::string& command)> on_command;
};

class SshServer : public Service {
 public:
  SshServer(SshServerConfig config, SshEvents events = {})
      : config_(std::move(config)), events_(std::move(events)) {}

  void install(net::Host& host) override;
  std::string_view name() const override { return "ssh"; }
  std::uint16_t port() const override { return config_.port; }
  const SshServerConfig& config() const { return config_; }

 private:
  SshServerConfig config_;
  SshEvents events_;
};

// Brute-force client used by SSH bots: exchanges banners, walks a credential
// list, optionally runs commands after success.
class SshClient {
 public:
  struct Result {
    bool connected = false;
    bool authenticated = false;
    Credentials used;
    std::string server_banner;
    int attempts = 0;
  };
  using Callback = std::function<void(const Result&)>;

  static void run(net::Host& from, util::Ipv4Addr target, std::uint16_t port,
                  std::vector<Credentials> credentials,
                  std::vector<std::string> commands, Callback done);
};

}  // namespace ofh::proto::ssh
