#include "proto/http.h"

#include "util/strings.h"

namespace ofh::proto::http {

namespace {

void parse_headers(const std::vector<std::string>& lines, std::size_t start,
                   std::map<std::string, std::string>& headers) {
  for (std::size_t i = start; i < lines.size(); ++i) {
    const auto& line = lines[i];
    if (util::trim(line).empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    headers[util::to_lower(util::trim(line.substr(0, colon)))] =
        std::string(util::trim(line.substr(colon + 1)));
  }
}

std::string body_after_blank_line(std::string_view text) {
  const auto pos = text.find("\r\n\r\n");
  return pos == std::string_view::npos ? std::string{}
                                       : std::string(text.substr(pos + 4));
}

}  // namespace

util::Bytes encode_request(const Request& request) {
  std::string text = request.method + " " + request.path + " HTTP/1.1\r\n";
  for (const auto& [key, value] : request.headers) {
    text += key + ": " + value + "\r\n";
  }
  if (!request.body.empty()) {
    text += "content-length: " + std::to_string(request.body.size()) + "\r\n";
  }
  text += "\r\n" + request.body;
  return util::to_bytes(text);
}

std::optional<Request> decode_request(std::string_view text) {
  const auto lines = util::split(text, '\n');
  if (lines.empty()) return std::nullopt;
  const auto parts = util::split(util::trim(lines[0]), ' ');
  if (parts.size() < 3 || !util::starts_with(parts[2], "HTTP/")) {
    return std::nullopt;
  }
  Request request;
  request.method = parts[0];
  request.path = parts[1];
  parse_headers(lines, 1, request.headers);
  request.body = body_after_blank_line(text);
  return request;
}

util::Bytes encode_response(const Response& response) {
  std::string text = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     response.reason + "\r\n";
  if (!response.server.empty()) text += "Server: " + response.server + "\r\n";
  for (const auto& [key, value] : response.headers) {
    text += key + ": " + value + "\r\n";
  }
  text += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  text += "\r\n" + response.body;
  return util::to_bytes(text);
}

std::optional<Response> decode_response(std::string_view text) {
  const auto lines = util::split(text, '\n');
  if (lines.empty() || !util::starts_with(lines[0], "HTTP/")) {
    return std::nullopt;
  }
  const auto parts = util::split(util::trim(lines[0]), ' ');
  if (parts.size() < 2) return std::nullopt;
  Response response;
  response.status = static_cast<int>(util::parse_i64(parts[1]));
  if (parts.size() > 2) response.reason = parts[2];
  std::map<std::string, std::string> headers;
  parse_headers(lines, 1, headers);
  if (const auto it = headers.find("server"); it != headers.end()) {
    response.server = it->second;
    headers.erase("server");
  }
  response.headers = std::move(headers);
  response.body = body_after_blank_line(text);
  return response;
}

namespace {

// Extracts "user=<u>&pass=<p>" form fields.
std::pair<std::string, std::string> parse_login_form(const std::string& body) {
  std::string user, pass;
  for (const auto& field : util::split(body, '&')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) continue;
    const auto key = field.substr(0, eq);
    const auto value = field.substr(eq + 1);
    if (key == "user" || key == "username") user = value;
    if (key == "pass" || key == "password") pass = value;
  }
  return {user, pass};
}

}  // namespace

void HttpServer::install(net::Host& host) {
  auto config = config_;
  auto events = events_;
  host.tcp().listen(config_.port, [config, events](net::TcpConnection& conn) {
    auto buffer = std::make_shared<std::string>();
    conn.on_data = [config, events, buffer](
                       net::TcpConnection& conn,
                       std::span<const std::uint8_t> data) {
      *buffer += util::to_string(data);
      if (buffer->find("\r\n\r\n") == std::string::npos) return;
      const auto request = decode_request(*buffer);
      buffer->clear();
      if (!request) {
        conn.close();
        return;
      }
      if (events.on_request) events.on_request(conn.remote_addr(), *request);

      Response response;
      response.server = config.server_header;
      if (config.has_login_form && request->method == "POST" &&
          request->path == "/login") {
        const auto [user, pass] = parse_login_form(request->body);
        const bool ok = config.auth.check(user, pass);
        if (events.on_login_attempt) {
          events.on_login_attempt(conn.remote_addr(), user, pass, ok);
        }
        response.status = ok ? 200 : 401;
        response.reason = ok ? "OK" : "Unauthorized";
        response.body = ok ? "<html>Welcome</html>"
                           : "<html>Invalid credentials</html>";
      } else {
        const auto it = config.routes.find(request->path);
        if (it != config.routes.end()) {
          response.body = it->second;
        } else if (const auto any = config.routes.find("*");
                   any != config.routes.end()) {
          response.body = any->second;
        } else {
          response.status = 404;
          response.reason = "Not Found";
          response.body = "<html><h1>404 Not Found</h1></html>";
        }
      }
      conn.send(encode_response(response));
    };
  });
}

void HttpClient::get(net::Host& from, util::Ipv4Addr target,
                     std::uint16_t port, std::string path, Callback done) {
  from.tcp().connect(target, port, [path = std::move(path),
                                    done = std::move(done)](
                                       net::TcpConnection* conn) {
    if (conn == nullptr) {
      done(std::nullopt);
      return;
    }
    auto buffer = std::make_shared<std::string>();
    auto callback = std::make_shared<Callback>(std::move(done));
    Request request;
    request.path = path;
    conn->send(encode_request(request));
    conn->on_data = [buffer, callback](net::TcpConnection& conn,
                                       std::span<const std::uint8_t> data) {
      *buffer += util::to_string(data);
      const auto response = decode_response(*buffer);
      if (response) {
        const auto it = response->headers.find("content-length");
        const std::size_t expected =
            it == response->headers.end()
                ? 0
                : static_cast<std::size_t>(util::parse_u64(it->second));
        if (response->body.size() >= expected) {
          if (*callback) {
            (*callback)(response);
            *callback = nullptr;
          }
          conn.close();
        }
      }
    };
    conn->on_close = [callback](net::TcpConnection&) {
      if (*callback) {
        (*callback)(std::nullopt);
        *callback = nullptr;
      }
    };
  });
}

}  // namespace ofh::proto::http
