#include "proto/ssh.h"

#include "util/strings.h"

namespace ofh::proto::ssh {

util::Bytes encode_auth(std::string_view user, std::string_view pass) {
  return util::to_bytes("AUTH " + std::string(user) + " " + std::string(pass) +
                        "\n");
}

std::optional<Credentials> decode_auth(std::string_view line) {
  const auto parts = util::split(util::trim(line), ' ');
  if (parts.size() != 3 || parts[0] != "AUTH") return std::nullopt;
  return Credentials{parts[1], parts[2]};
}

namespace {
struct SshSession {
  bool authenticated = false;
  int attempts = 0;
  std::string buffer;
};
}  // namespace

void SshServer::install(net::Host& host) {
  auto config = config_;
  auto events = events_;
  host.tcp().listen(config_.port, [config, events](net::TcpConnection& conn) {
    if (events.on_connect) events.on_connect(conn.remote_addr());
    auto session = std::make_shared<SshSession>();
    conn.send_text(config.banner + "\r\n");

    conn.on_data = [config, events, session](
                       net::TcpConnection& conn,
                       std::span<const std::uint8_t> data) {
      session->buffer += util::to_string(data);
      for (;;) {
        const auto newline = session->buffer.find('\n');
        if (newline == std::string::npos) return;
        const std::string line = session->buffer.substr(0, newline);
        session->buffer.erase(0, newline + 1);
        if (util::starts_with(line, "SSH-")) continue;  // client banner

        if (!session->authenticated) {
          const auto auth = decode_auth(line);
          if (!auth) continue;
          const bool ok = config.auth.check(auth->user, auth->pass);
          ++session->attempts;
          if (events.on_auth) {
            events.on_auth(conn.remote_addr(), auth->user, auth->pass, ok);
          }
          if (ok) {
            session->authenticated = true;
            conn.send_text("OK\n");
          } else if (session->attempts >= config.max_attempts) {
            conn.send_text("FAIL\n");
            conn.close();
            return;
          } else {
            conn.send_text("FAIL\n");
          }
        } else {
          if (events.on_command) events.on_command(conn.remote_addr(), line);
          if (line == "exit") {
            conn.close();
            return;
          }
          conn.send_text("$ \n");
        }
      }
    };
  });
}

void SshClient::run(net::Host& from, util::Ipv4Addr target,
                    std::uint16_t port, std::vector<Credentials> credentials,
                    std::vector<std::string> commands, Callback done) {
  struct ClientState {
    Result result;
    std::vector<Credentials> credentials;
    std::vector<std::string> commands;
    std::size_t cred_index = 0;
    std::size_t command_index = 0;
    std::string buffer;
    bool finished = false;
    Callback callback;
    void finish() {
      if (finished) return;
      finished = true;
      if (callback) callback(result);
    }
  };
  auto state = std::make_shared<ClientState>();
  state->credentials = std::move(credentials);
  state->commands = std::move(commands);
  state->callback = std::move(done);

  from.tcp().connect(target, port, [state, &from](net::TcpConnection* conn) {
    if (conn == nullptr) {
      state->finish();
      return;
    }
    state->result.connected = true;
    conn->send_text("SSH-2.0-Go\r\n");

    conn->on_data = [state](net::TcpConnection& conn,
                            std::span<const std::uint8_t> data) {
      state->buffer += util::to_string(data);
      for (;;) {
        const auto newline = state->buffer.find('\n');
        if (newline == std::string::npos) return;
        std::string line = state->buffer.substr(0, newline);
        state->buffer.erase(0, newline + 1);
        while (!line.empty() && line.back() == '\r') line.pop_back();

        if (util::starts_with(line, "SSH-")) {
          state->result.server_banner = line;
          if (!state->credentials.empty()) {
            const auto& cred = state->credentials[0];
            ++state->result.attempts;
            conn.send(encode_auth(cred.user, cred.pass));
          } else {
            conn.close();
            state->finish();
            return;
          }
        } else if (line == "OK") {
          state->result.authenticated = true;
          state->result.used = state->credentials[state->cred_index];
          if (state->command_index < state->commands.size()) {
            conn.send_text(state->commands[state->command_index++] + "\n");
          } else {
            conn.send_text("exit\n");
            state->finish();
            return;
          }
        } else if (line == "FAIL") {
          ++state->cred_index;
          if (state->cred_index < state->credentials.size()) {
            const auto& cred = state->credentials[state->cred_index];
            ++state->result.attempts;
            conn.send(encode_auth(cred.user, cred.pass));
          } else {
            conn.close();
            state->finish();
            return;
          }
        } else if (line == "$ " || line == "$") {
          if (state->command_index < state->commands.size()) {
            conn.send_text(state->commands[state->command_index++] + "\n");
          } else {
            conn.send_text("exit\n");
            state->finish();
            return;
          }
        }
      }
    };
    conn->on_close = [state](net::TcpConnection&) { state->finish(); };
  });
}

}  // namespace ofh::proto::ssh
