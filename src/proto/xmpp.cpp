#include "proto/xmpp.h"

#include "util/strings.h"

namespace ofh::proto::xmpp {

namespace {

// Finds "<tag" only where the name ends at a real delimiter, so that tag
// "mechanism" does not match inside "<mechanisms ...>".
std::size_t find_open_tag(std::string_view xml, std::string_view tag,
                          std::size_t from = 0) {
  const std::string open = "<" + std::string(tag);
  while (from <= xml.size()) {
    const auto start = xml.find(open, from);
    if (start == std::string_view::npos) return std::string_view::npos;
    const auto after = start + open.size();
    if (after >= xml.size()) return std::string_view::npos;
    const char c = xml[after];
    if (c == '>' || c == '/' || c == ' ' || c == '\t') return start;
    from = start + 1;
  }
  return std::string_view::npos;
}

}  // namespace

std::optional<std::string> extract_element(std::string_view xml,
                                           std::string_view tag) {
  const std::string close = "</" + std::string(tag) + ">";
  const auto start = find_open_tag(xml, tag);
  if (start == std::string_view::npos) return std::nullopt;
  const auto content_start = xml.find('>', start);
  if (content_start == std::string_view::npos) return std::nullopt;
  if (content_start > 0 && xml[content_start - 1] == '/') return std::string{};
  const auto end = xml.find(close, content_start);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(
      xml.substr(content_start + 1, end - content_start - 1));
}

std::vector<std::string> extract_all_elements(std::string_view xml,
                                              std::string_view tag) {
  std::vector<std::string> out;
  std::string_view rest = xml;
  const std::string close = "</" + std::string(tag) + ">";
  while (true) {
    const auto element = extract_element(rest, tag);
    if (!element) break;
    out.push_back(*element);
    const auto pos = rest.find(close);
    if (pos == std::string_view::npos) break;
    rest.remove_prefix(pos + close.size());
  }
  return out;
}

std::optional<std::string> extract_attribute(std::string_view xml,
                                             std::string_view tag,
                                             std::string_view attribute) {
  const auto start = find_open_tag(xml, tag);
  if (start == std::string_view::npos) return std::nullopt;
  const auto end = xml.find('>', start);
  if (end == std::string_view::npos) return std::nullopt;
  const std::string_view tag_text = xml.substr(start, end - start);
  const std::string pattern = std::string(attribute) + "='";
  auto attr_pos = tag_text.find(pattern);
  std::size_t value_start;
  char quote = '\'';
  if (attr_pos == std::string_view::npos) {
    const std::string pattern2 = std::string(attribute) + "=\"";
    attr_pos = tag_text.find(pattern2);
    if (attr_pos == std::string_view::npos) return std::nullopt;
    value_start = attr_pos + pattern2.size();
    quote = '"';
  } else {
    value_start = attr_pos + pattern.size();
  }
  const auto value_end = tag_text.find(quote, value_start);
  if (value_end == std::string_view::npos) return std::nullopt;
  return std::string(tag_text.substr(value_start, value_end - value_start));
}

std::string stream_open(std::string_view from_domain) {
  return "<?xml version='1.0'?><stream:stream from='" +
         std::string(from_domain) +
         "' xmlns='jabber:client' "
         "xmlns:stream='http://etherx.jabber.org/streams' version='1.0'>";
}

std::string stream_features(const std::vector<std::string>& mechanisms,
                            bool starttls_required) {
  std::string out = "<stream:features>";
  if (starttls_required) {
    out +=
        "<starttls xmlns='urn:ietf:params:xml:ns:xmpp-tls'>"
        "<required/></starttls>";
  }
  out += "<mechanisms xmlns='urn:ietf:params:xml:ns:xmpp-sasl'>";
  for (const auto& mechanism : mechanisms) {
    out += "<mechanism>" + mechanism + "</mechanism>";
  }
  out += "</mechanisms></stream:features>";
  return out;
}

std::string sasl_auth(std::string_view mechanism, std::string_view payload) {
  return "<auth xmlns='urn:ietf:params:xml:ns:xmpp-sasl' mechanism='" +
         std::string(mechanism) + "'>" + std::string(payload) + "</auth>";
}

std::string sasl_success() {
  return "<success xmlns='urn:ietf:params:xml:ns:xmpp-sasl'/>";
}

std::string sasl_failure(std::string_view condition) {
  return "<failure xmlns='urn:ietf:params:xml:ns:xmpp-sasl'><" +
         std::string(condition) + "/></failure>";
}

std::string message_stanza(std::string_view to, std::string_view body) {
  return "<message to='" + std::string(to) + "'><body>" + std::string(body) +
         "</body></message>";
}

// ------------------------------------------------------------------- server

XmppServer::XmppServer(XmppServerConfig config, XmppEvents events)
    : config_(std::move(config)), events_(std::move(events)) {}

std::vector<std::string> XmppServer::advertised_mechanisms() const {
  if (!config_.mechanisms.empty()) return config_.mechanisms;
  std::vector<std::string> mechanisms;
  if (config_.auth.plaintext_only) {
    mechanisms.push_back("PLAIN");
  } else {
    mechanisms.push_back("SCRAM-SHA-1");
    mechanisms.push_back("PLAIN");
  }
  if (config_.auth.allow_anonymous || !config_.auth.required) {
    mechanisms.push_back("ANONYMOUS");
  }
  return mechanisms;
}

namespace {
struct XmppSession {
  bool stream_opened = false;
  bool authenticated = false;
  std::string buffer;
};
}  // namespace

void XmppServer::install(net::Host& host) {
  const auto mechanisms = advertised_mechanisms();
  auto config = config_;
  auto events = events_;

  const auto acceptor = [config, events, mechanisms](net::TcpConnection& conn) {
    auto session = std::make_shared<XmppSession>();
    conn.on_data = [config, events, mechanisms, session](
                       net::TcpConnection& conn,
                       std::span<const std::uint8_t> data) {
      session->buffer += util::to_string(data);

      if (!session->stream_opened &&
          util::contains(session->buffer, "<stream:stream")) {
        session->stream_opened = true;
        session->buffer.clear();
        if (events.on_stream_open) events.on_stream_open(conn.remote_addr());
        conn.send_text(stream_open(config.domain) +
                       stream_features(mechanisms, config.starttls_required));
        return;
      }

      if (!session->authenticated &&
          util::contains(session->buffer, "</auth>")) {
        const auto mechanism =
            extract_attribute(session->buffer, "auth", "mechanism");
        const auto payload = extract_element(session->buffer, "auth");
        session->buffer.clear();
        bool ok = false;
        std::string used = mechanism.value_or("?");
        if (used == "ANONYMOUS") {
          ok = !config.auth.required || config.auth.allow_anonymous;
        } else if (used == "PLAIN" && payload) {
          // payload is "user\0pass" in real SASL PLAIN; we use "user:pass".
          const auto parts = util::split(*payload, ':');
          if (parts.size() == 2) ok = config.auth.check(parts[0], parts[1]);
          if (!config.auth.required) ok = true;
        }
        if (events.on_auth) events.on_auth(conn.remote_addr(), used, ok);
        if (ok) {
          session->authenticated = true;
          conn.send_text(sasl_success());
        } else {
          conn.send_text(sasl_failure("not-authorized"));
        }
        return;
      }

      if (session->authenticated &&
          util::contains(session->buffer, "</message>")) {
        const auto to =
            extract_attribute(session->buffer, "message", "to");
        const auto body = extract_element(session->buffer, "body");
        session->buffer.clear();
        if (events.on_message && to && body) {
          events.on_message(conn.remote_addr(), *to, *body);
        }
        conn.send_text("<iq type='result'/>");
      }
    };
  };

  host.tcp().listen(config_.client_port, acceptor);
  host.tcp().listen(config_.server_port, acceptor);
}

}  // namespace ofh::proto::xmpp
