#include "proto/amqp.h"

#include "util/strings.h"

namespace ofh::proto::amqp {

namespace {
constexpr std::uint8_t kFrameEnd = 0xce;
}

util::Bytes protocol_header() {
  return {'A', 'M', 'Q', 'P', 0, 0, 9, 1};
}

bool is_protocol_header(std::span<const std::uint8_t> data) {
  util::ByteReader reader(data);
  return reader.expect(protocol_header());
}

util::Bytes encode_frame(const Frame& frame) {
  util::ByteWriter out;
  out.u8(static_cast<std::uint8_t>(frame.type))
      .u16(frame.channel)
      .u32(static_cast<std::uint32_t>(frame.payload.size()))
      .raw(frame.payload)
      .u8(kFrameEnd);
  return out.take();
}

std::optional<Frame> decode_frame(std::span<const std::uint8_t> data,
                                  std::size_t* consumed) {
  util::ByteReader reader(data);
  const auto type = reader.u8();
  const auto channel = reader.u16();
  const auto size = reader.u32();
  if (!type || !channel || !size) return std::nullopt;
  const auto payload = reader.raw(*size);
  const auto end = reader.u8();
  if (!payload || !end || *end != kFrameEnd) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(*type);
  frame.channel = *channel;
  frame.payload.assign(payload->begin(), payload->end());
  if (consumed != nullptr) *consumed = reader.position();
  return frame;
}

// Server-properties are proper AMQP field tables in the real protocol; we
// encode the fields the scanner actually reads (product, version, platform)
// as length-prefixed strings, preserving information content.
util::Bytes encode_start(const StartMethod& start) {
  util::ByteWriter out;
  out.u16(kClassConnection).u16(kMethodStart);
  out.u8(0).u8(9);  // version-major, version-minor
  out.str8(start.product).str8(start.version).str8(start.platform);
  std::string mechanisms;
  for (const auto& mechanism : start.mechanisms) {
    if (!mechanisms.empty()) mechanisms += " ";
    mechanisms += mechanism;
  }
  out.str16(mechanisms);
  return out.take();
}

std::optional<StartMethod> decode_start(std::span<const std::uint8_t> body) {
  util::ByteReader reader(body);
  const auto class_id = reader.u16();
  const auto method_id = reader.u16();
  if (!class_id || *class_id != kClassConnection || !method_id ||
      *method_id != kMethodStart) {
    return std::nullopt;
  }
  if (!reader.u8() || !reader.u8()) return std::nullopt;
  auto product = reader.str8();
  auto version = reader.str8();
  auto platform = reader.str8();
  auto mechanisms = reader.str16();
  if (!product || !version || !platform || !mechanisms) return std::nullopt;
  StartMethod start;
  start.product = std::move(*product);
  start.version = std::move(*version);
  start.platform = std::move(*platform);
  for (auto& mechanism : util::split(*mechanisms, ' ')) {
    if (!mechanism.empty()) start.mechanisms.push_back(std::move(mechanism));
  }
  return start;
}

util::Bytes encode_start_ok(const StartOkMethod& start_ok) {
  util::ByteWriter out;
  out.u16(kClassConnection).u16(kMethodStartOk);
  out.str8(start_ok.mechanism).str8(start_ok.user).str8(start_ok.pass);
  return out.take();
}

std::optional<StartOkMethod> decode_start_ok(
    std::span<const std::uint8_t> body) {
  util::ByteReader reader(body);
  const auto class_id = reader.u16();
  const auto method_id = reader.u16();
  if (!class_id || *class_id != kClassConnection || !method_id ||
      *method_id != kMethodStartOk) {
    return std::nullopt;
  }
  auto mechanism = reader.str8();
  auto user = reader.str8();
  auto pass = reader.str8();
  if (!mechanism || !user || !pass) return std::nullopt;
  return StartOkMethod{std::move(*mechanism), std::move(*user),
                       std::move(*pass)};
}

// ------------------------------------------------------------------- broker

struct AmqpBroker::State {
  std::map<std::string, std::vector<std::string>> queues;
};

namespace {
struct AmqpSession {
  bool saw_header = false;
  bool authenticated = false;
  util::Bytes inbox;
};
}  // namespace

AmqpBroker::AmqpBroker(AmqpBrokerConfig config, AmqpEvents events)
    : config_(std::move(config)),
      events_(std::move(events)),
      state_(std::make_shared<State>()) {
  for (const auto& [queue, backlog] : config_.queues) {
    state_->queues[queue] = backlog;
  }
}

std::size_t AmqpBroker::queue_depth(const std::string& queue) const {
  const auto it = state_->queues.find(queue);
  return it == state_->queues.end() ? 0 : it->second.size();
}

util::Bytes AmqpBroker::publish_command(const std::string& queue,
                                        const std::string& message) {
  Frame frame;
  frame.type = FrameType::kBody;
  frame.payload = util::to_bytes("PUBLISH " + queue + " " + message);
  return encode_frame(frame);
}

void AmqpBroker::install(net::Host& host) {
  auto config = config_;
  auto events = events_;
  auto state = state_;
  host.tcp().listen(config_.port, [config, events,
                                   state](net::TcpConnection& conn) {
    auto session = std::make_shared<AmqpSession>();

    conn.on_data = [config, events, state, session](
                       net::TcpConnection& conn,
                       std::span<const std::uint8_t> data) {
      auto& inbox = session->inbox;
      inbox.insert(inbox.end(), data.begin(), data.end());

      if (!session->saw_header) {
        if (inbox.size() < 8) return;
        if (!is_protocol_header(inbox)) {
          conn.close();
          return;
        }
        session->saw_header = true;
        inbox.erase(inbox.begin(), inbox.begin() + 8);
        if (events.on_connect) events.on_connect(conn.remote_addr());
        // Announce Connection.Start with our product/version/mechanisms —
        // this is the banner the scanner classifies.
        StartMethod start;
        start.product = config.product;
        start.version = config.version;
        start.mechanisms = {"PLAIN", "AMQPLAIN"};
        if (!config.auth.required || config.auth.allow_anonymous) {
          start.mechanisms.push_back("ANONYMOUS");
        }
        Frame frame;
        frame.type = FrameType::kMethod;
        frame.payload = encode_start(start);
        conn.send(encode_frame(frame));
      }

      for (;;) {
        std::size_t consumed = 0;
        const auto frame = decode_frame(inbox, &consumed);
        if (!frame) return;
        inbox.erase(inbox.begin(),
                    inbox.begin() + static_cast<std::ptrdiff_t>(consumed));

        if (frame->type == FrameType::kMethod) {
          const auto start_ok = decode_start_ok(frame->payload);
          if (start_ok) {
            bool ok = false;
            if (start_ok->mechanism == "ANONYMOUS") {
              ok = !config.auth.required || config.auth.allow_anonymous;
            } else {
              ok = config.auth.check(start_ok->user, start_ok->pass);
            }
            session->authenticated = ok;
            if (events.on_auth) {
              events.on_auth(conn.remote_addr(), start_ok->mechanism, ok);
            }
            Frame reply;
            reply.type = FrameType::kMethod;
            util::ByteWriter payload;
            payload.u16(kClassConnection)
                .u16(ok ? kMethodOpenOk : kMethodClose);
            reply.payload = payload.take();
            conn.send(encode_frame(reply));
            if (!ok) {
              conn.close();
              return;
            }
          }
        } else if (frame->type == FrameType::kBody &&
                   session->authenticated) {
          // Simplified queue commands (see header comment).
          const std::string command = util::to_string(frame->payload);
          const auto parts = util::split(command, ' ');
          if (parts.size() >= 3 && parts[0] == "PUBLISH") {
            std::string message = command.substr(
                parts[0].size() + parts[1].size() + 2);
            state->queues[parts[1]].push_back(std::move(message));
            if (events.on_queue_access) {
              events.on_queue_access(conn.remote_addr(), parts[1], true);
            }
          } else if (parts.size() >= 2 && parts[0] == "CONSUME") {
            auto& queue = state->queues[parts[1]];
            if (events.on_queue_access) {
              events.on_queue_access(conn.remote_addr(), parts[1], false);
            }
            Frame reply;
            reply.type = FrameType::kBody;
            reply.payload = util::to_bytes(
                queue.empty() ? std::string("EMPTY") : queue.front());
            if (!queue.empty()) queue.erase(queue.begin());
            conn.send(encode_frame(reply));
          }
        } else if (frame->type == FrameType::kHeartbeat) {
          Frame reply;
          reply.type = FrameType::kHeartbeat;
          conn.send(encode_frame(reply));
        }
      }
    };
  });
}

}  // namespace ofh::proto::amqp
