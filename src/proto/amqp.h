// AMQP 0-9-1: protocol header handshake, frame format (type, channel, size,
// payload, 0xCE end marker), Connection.Start with server-properties and
// SASL mechanism list, and a small broker with queues. The misconfiguration
// surface is the advertised mechanism list (PLAIN/ANONYMOUS) and versions
// with known CVEs (the paper flags RabbitMQ 2.7.1 / 2.8.4 as "No auth").
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/host.h"
#include "proto/service.h"
#include "util/bytes.h"

namespace ofh::proto::amqp {

// "AMQP" 0x00 0x00 0x09 0x01
util::Bytes protocol_header();
bool is_protocol_header(std::span<const std::uint8_t> data);

enum class FrameType : std::uint8_t {
  kMethod = 1,
  kHeader = 2,
  kBody = 3,
  kHeartbeat = 8,
};

struct Frame {
  FrameType type = FrameType::kMethod;
  std::uint16_t channel = 0;
  util::Bytes payload;
};

util::Bytes encode_frame(const Frame& frame);
// Decodes one frame from the front; nullopt if incomplete/malformed.
// consumed receives the total size of the decoded frame.
std::optional<Frame> decode_frame(std::span<const std::uint8_t> data,
                                  std::size_t* consumed);

// Method payloads: class-id, method-id, arguments.
inline constexpr std::uint16_t kClassConnection = 10;
inline constexpr std::uint16_t kMethodStart = 10;
inline constexpr std::uint16_t kMethodStartOk = 11;
inline constexpr std::uint16_t kMethodTune = 30;
inline constexpr std::uint16_t kMethodOpen = 40;
inline constexpr std::uint16_t kMethodOpenOk = 41;
inline constexpr std::uint16_t kMethodClose = 50;

struct StartMethod {
  std::string product;       // e.g. "RabbitMQ"
  std::string version;       // e.g. "2.7.1"
  std::string platform = "Erlang/OTP";
  std::vector<std::string> mechanisms;  // e.g. {"PLAIN", "AMQPLAIN"}
};
util::Bytes encode_start(const StartMethod& start);
std::optional<StartMethod> decode_start(std::span<const std::uint8_t> body);

struct StartOkMethod {
  std::string mechanism;  // "PLAIN" or "ANONYMOUS"
  std::string user;
  std::string pass;
};
util::Bytes encode_start_ok(const StartOkMethod& start_ok);
std::optional<StartOkMethod> decode_start_ok(
    std::span<const std::uint8_t> body);

// ------------------------------------------------------------------- broker

struct AmqpBrokerConfig {
  std::uint16_t port = 5672;
  std::string product = "RabbitMQ";
  std::string version = "3.8.9";
  AuthConfig auth;
  // Pre-declared queues with initial message backlogs.
  std::vector<std::pair<std::string, std::vector<std::string>>> queues;
};

struct AmqpEvents {
  std::function<void(util::Ipv4Addr)> on_connect;  // protocol header seen
  std::function<void(util::Ipv4Addr, const std::string& mechanism, bool ok)>
      on_auth;
  std::function<void(util::Ipv4Addr, const std::string& queue, bool publish)>
      on_queue_access;
};

class AmqpBroker : public Service {
 public:
  explicit AmqpBroker(AmqpBrokerConfig config, AmqpEvents events = {});

  void install(net::Host& host) override;
  std::string_view name() const override { return "amqp"; }
  std::uint16_t port() const override { return config_.port; }

  const AmqpBrokerConfig& config() const { return config_; }
  std::size_t queue_depth(const std::string& queue) const;

  // Simplified post-handshake text commands carried in body frames:
  // "PUBLISH <queue> <message>" and "CONSUME <queue>".
  static util::Bytes publish_command(const std::string& queue,
                                     const std::string& message);

 private:
  struct State;
  AmqpBrokerConfig config_;
  AmqpEvents events_;
  std::shared_ptr<State> state_;
};

}  // namespace ofh::proto::amqp
