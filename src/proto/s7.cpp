#include "proto/s7.h"

namespace ofh::proto::s7 {

namespace {
constexpr std::uint8_t kTpktVersion = 3;
constexpr std::uint8_t kCotpConnectRequest = 0xe0;
constexpr std::uint8_t kCotpConnectConfirm = 0xd0;
constexpr std::uint8_t kCotpData = 0xf0;
constexpr std::uint8_t kS7Magic = 0x32;
}  // namespace

util::Bytes encode_cotp_connect() {
  util::ByteWriter out;
  out.u8(kTpktVersion).u8(0).u16(11);           // TPKT header
  out.u8(6).u8(kCotpConnectRequest).u16(0).u16(1).u8(0);  // COTP CR
  return out.take();
}

util::Bytes encode_pdu(PduType type, std::uint16_t pdu_ref,
                       const util::Bytes& payload) {
  util::ByteWriter out;
  const std::uint16_t total =
      static_cast<std::uint16_t>(4 + 3 + 7 + payload.size());
  out.u8(kTpktVersion).u8(0).u16(total);
  out.u8(2).u8(kCotpData).u8(0x80);  // COTP DT
  out.u8(kS7Magic)
      .u8(static_cast<std::uint8_t>(type))
      .u16(0)  // reserved
      .u16(pdu_ref)
      .u8(static_cast<std::uint8_t>(payload.size()));
  out.raw(payload);
  return out.take();
}

std::optional<S7Frame> decode(std::span<const std::uint8_t> data,
                              std::size_t* consumed) {
  util::ByteReader reader(data);
  const auto version = reader.u8();
  const auto reserved = reader.u8();
  const auto length = reader.u16();
  if (!version || *version != kTpktVersion || !reserved || !length ||
      *length < 4) {
    return std::nullopt;
  }
  if (data.size() < *length) return std::nullopt;

  const auto cotp_length = reader.u8();
  const auto cotp_type = reader.u8();
  if (!cotp_length || !cotp_type) return std::nullopt;

  S7Frame frame;
  if (*cotp_type == kCotpConnectRequest ||
      *cotp_type == kCotpConnectConfirm) {
    frame.is_cotp_connect = true;
    if (consumed != nullptr) *consumed = *length;
    return frame;
  }
  if (*cotp_type != kCotpData) return std::nullopt;
  if (!reader.u8()) return std::nullopt;  // COTP DT flags

  const auto magic = reader.u8();
  const auto pdu_type = reader.u8();
  if (!magic || *magic != kS7Magic || !pdu_type) return std::nullopt;
  if (!reader.u16()) return std::nullopt;  // reserved
  const auto pdu_ref = reader.u16();
  const auto payload_length = reader.u8();
  if (!pdu_ref || !payload_length) return std::nullopt;
  const auto payload = reader.raw(*payload_length);
  if (!payload) return std::nullopt;

  frame.pdu_type = static_cast<PduType>(*pdu_type);
  frame.pdu_ref = *pdu_ref;
  frame.payload.assign(payload->begin(), payload->end());
  if (consumed != nullptr) *consumed = *length;
  return frame;
}

struct S7Server::State {
  std::size_t jobs_in_flight = 0;
  bool dos_reported = false;
};

S7Server::S7Server(S7ServerConfig config, S7Events events)
    : config_(std::move(config)),
      events_(std::move(events)),
      state_(std::make_shared<State>()) {}

bool S7Server::saturated() const {
  return state_->jobs_in_flight >= config_.job_slots;
}

std::size_t S7Server::jobs_in_flight() const {
  return state_->jobs_in_flight;
}

void S7Server::install(net::Host& host) {
  auto config = config_;
  auto events = events_;
  auto state = state_;
  net::Host* host_ptr = &host;
  host.tcp().listen(config_.port, [config, events, state,
                                   host_ptr](net::TcpConnection& conn) {
    auto inbox = std::make_shared<util::Bytes>();
    conn.on_data = [config, events, state, host_ptr, inbox](
                       net::TcpConnection& conn,
                       std::span<const std::uint8_t> data) {
      inbox->insert(inbox->end(), data.begin(), data.end());
      for (;;) {
        std::size_t consumed = 0;
        const auto frame = decode(*inbox, &consumed);
        if (!frame) return;
        inbox->erase(inbox->begin(),
                     inbox->begin() + static_cast<std::ptrdiff_t>(consumed));

        if (frame->is_cotp_connect) {
          if (events.on_connect) events.on_connect(conn.remote_addr());
          // COTP connection confirm.
          util::ByteWriter out;
          out.u8(kTpktVersion).u8(0).u16(11);
          out.u8(6).u8(kCotpConnectConfirm).u16(1).u16(1).u8(0);
          conn.send(out.take());
          continue;
        }

        if (events.on_pdu) events.on_pdu(conn.remote_addr(), frame->pdu_type);

        if (frame->pdu_type == PduType::kJob) {
          // Each Job spawns a request slot in the device (ICSA-16-299-01);
          // once slots are exhausted the PLC stops responding until slots
          // recover.
          if (state->jobs_in_flight >= config.job_slots) {
            if (!state->dos_reported && events.on_dos_triggered) {
              state->dos_reported = true;
              events.on_dos_triggered(conn.remote_addr());
            }
            return;  // unresponsive: the DoS
          }
          ++state->jobs_in_flight;
          host_ptr->sim().after(config.job_recovery, [state] {
            if (state->jobs_in_flight > 0) {
              --state->jobs_in_flight;
              if (state->jobs_in_flight == 0) state->dos_reported = false;
            }
          });
          util::Bytes module_info =
              util::to_bytes(config.module + ";" + config.plant_id);
          conn.send(encode_pdu(PduType::kAckData, frame->pdu_ref,
                               module_info));
        } else if (frame->pdu_type == PduType::kUserData) {
          conn.send(encode_pdu(PduType::kAckData, frame->pdu_ref,
                               util::to_bytes(config.module)));
        }
      }
    };
  });
}

}  // namespace ofh::proto::s7
