// Small string helpers shared by banner classifiers and report renderers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ofh::util {

std::vector<std::string> split(std::string_view text, char sep);
std::string_view trim(std::string_view text);
std::string to_lower(std::string_view text);
bool contains(std::string_view haystack, std::string_view needle);
bool icontains(std::string_view haystack, std::string_view needle);
bool starts_with(std::string_view text, std::string_view prefix);

// Saturating decimal parse of an optionally-signed integer. Attacker-facing
// header fields go through these instead of atoi/atol, whose behavior is
// undefined on out-of-range input: leading whitespace is skipped, parsing
// stops at the first non-digit, and out-of-range values clamp to the limits
// of the return type. Returns fallback when no digits are present.
std::int64_t parse_i64(std::string_view text, std::int64_t fallback = 0);
// As parse_i64 but for non-negative sizes; negative values parse as fallback.
std::uint64_t parse_u64(std::string_view text, std::uint64_t fallback = 0);

// Renders n with thousands separators, e.g. 1832893 -> "1,832,893".
std::string with_commas(std::uint64_t n);

// Fixed-precision percentage "12.3%".
std::string percent(double fraction, int decimals = 1);

// Hex encoding of a byte sequence, lowercase, no separators.
std::string hex(const std::vector<std::uint8_t>& data);

}  // namespace ofh::util
