// Byte-buffer reader/writer with network (big-endian) integer accessors.
// All wire codecs in src/proto are built on these two types.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ofh::util {

using Bytes = std::vector<std::uint8_t>;

inline Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

inline std::string to_string(std::span<const std::uint8_t> data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

// Appends big-endian integers and raw byte runs to a growing buffer.
class ByteWriter {
 public:
  ByteWriter& u8(std::uint8_t v) {
    buf_.push_back(v);
    return *this;
  }
  ByteWriter& u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
    return *this;
  }
  ByteWriter& u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
    return *this;
  }
  ByteWriter& u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
    return *this;
  }
  ByteWriter& raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
    return *this;
  }
  ByteWriter& text(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
    return *this;
  }
  // Length-prefixed string (u8 or u16 length), common in MQTT/AMQP framing.
  ByteWriter& str8(std::string_view s) {
    u8(static_cast<std::uint8_t>(s.size()));
    return text(s);
  }
  ByteWriter& str16(std::string_view s) {
    u16(static_cast<std::uint16_t>(s.size()));
    return text(s);
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

// Sequential reader over a byte span. All accessors return nullopt on
// underflow instead of throwing so codecs can reject truncated frames.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }

  std::optional<std::uint8_t> u8() {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
  }
  std::optional<std::uint16_t> u16() {
    if (remaining() < 2) return std::nullopt;
    const std::uint16_t v = (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  std::optional<std::uint32_t> u32() {
    const auto hi = u16();
    if (!hi) return std::nullopt;
    const auto lo = u16();
    if (!lo) return std::nullopt;
    return (std::uint32_t{*hi} << 16) | *lo;
  }
  std::optional<std::span<const std::uint8_t>> raw(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::optional<std::string> str(std::size_t n) {
    const auto span = raw(n);
    if (!span) return std::nullopt;
    return to_string(*span);
  }
  // Length-prefixed strings mirroring ByteWriter::str8/str16.
  std::optional<std::string> str8() {
    const auto n = u8();
    if (!n) return std::nullopt;
    return str(*n);
  }
  std::optional<std::string> str16() {
    const auto n = u16();
    if (!n) return std::nullopt;
    return str(*n);
  }

  std::span<const std::uint8_t> rest() const { return data_.subspan(pos_); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ofh::util
