// Byte-buffer reader/writer with network (big-endian) integer accessors.
// All wire codecs in src/proto are built on these two types.
//
// Invariants (see DESIGN.md "Bounds-checked codec layer"):
//  * Every read checks remaining() before touching the buffer; an underflow
//    returns nullopt and latches a typed error — it never reads out of
//    bounds and never throws.
//  * The first failure wins: error() / error_offset() report where a decode
//    went wrong, and every later accessor keeps failing (no resynchronizing
//    on attacker-controlled input).
//  * Writers never silently truncate: a str8/str16 whose payload exceeds the
//    length prefix latches kLengthOverflow instead of masking the size.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ofh::util {

using Bytes = std::vector<std::uint8_t>;

// Why a decode failed. Codecs surface nullopt to callers; the reader keeps
// the typed reason so harnesses and logs can distinguish a truncated frame
// from a malformed one.
enum class CodecError : std::uint8_t {
  kNone = 0,
  kUnderflow,       // read past the end of the buffer
  kBadVarint,       // unterminated or overlong base-128 varint
  kMismatch,        // expect() found different bytes than required
  kLengthOverflow,  // writer: payload does not fit its length prefix
};

constexpr std::string_view codec_error_name(CodecError error) {
  switch (error) {
    case CodecError::kNone: return "none";
    case CodecError::kUnderflow: return "underflow";
    case CodecError::kBadVarint: return "bad-varint";
    case CodecError::kMismatch: return "mismatch";
    case CodecError::kLengthOverflow: return "length-overflow";
  }
  return "?";
}

inline Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

inline std::string to_string(std::span<const std::uint8_t> data) {
  if (data.empty()) return {};  // data() may be null; keep the ctor in-bounds
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

// Appends big-endian integers and raw byte runs to a growing buffer.
class ByteWriter {
 public:
  ByteWriter& u8(std::uint8_t v) {
    buf_.push_back(v);
    return *this;
  }
  ByteWriter& u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
    return *this;
  }
  ByteWriter& u24(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    return u16(static_cast<std::uint16_t>(v));
  }
  ByteWriter& u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    return u16(static_cast<std::uint16_t>(v));
  }
  ByteWriter& u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    return u32(static_cast<std::uint32_t>(v));
  }
  // MQTT-style base-128 varint: little-endian digits, msb = continue.
  ByteWriter& varu32(std::uint32_t v) {
    do {
      std::uint8_t digit = v % 128;
      v /= 128;
      if (v > 0) digit |= 0x80;
      buf_.push_back(digit);
    } while (v > 0);
    return *this;
  }
  ByteWriter& raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
    return *this;
  }
  ByteWriter& text(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
    return *this;
  }
  // Length-prefixed string (u8 or u16 length), common in MQTT/AMQP framing.
  // A payload longer than the prefix can express latches kLengthOverflow
  // rather than emitting a frame whose length field lies about its body.
  ByteWriter& str8(std::string_view s) {
    if (s.size() > 0xff) return fail(CodecError::kLengthOverflow);
    u8(static_cast<std::uint8_t>(s.size()));
    return text(s);
  }
  ByteWriter& str16(std::string_view s) {
    if (s.size() > 0xffff) return fail(CodecError::kLengthOverflow);
    u16(static_cast<std::uint16_t>(s.size()));
    return text(s);
  }

  bool ok() const { return error_ == CodecError::kNone; }
  CodecError error() const { return error_; }

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  ByteWriter& fail(CodecError error) {
    if (error_ == CodecError::kNone) error_ = error;
    return *this;
  }

  Bytes buf_;
  CodecError error_ = CodecError::kNone;
};

// Sequential reader over a byte span. All accessors return nullopt on
// underflow instead of throwing so codecs can reject truncated frames; the
// reader additionally latches the first CodecError with its offset.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }

  bool ok() const { return error_ == CodecError::kNone; }
  CodecError error() const { return error_; }
  // Buffer offset at which the latched error occurred.
  std::size_t error_offset() const { return error_pos_; }

  std::optional<std::uint8_t> u8() {
    if (!check(1)) return std::nullopt;
    return data_[pos_++];
  }
  // Reads the next byte without consuming it.
  std::optional<std::uint8_t> peek_u8() {
    if (!ok() || remaining() < 1) return std::nullopt;  // peek never latches
    return data_[pos_];
  }
  std::optional<std::uint16_t> u16() {
    if (!check(2)) return std::nullopt;
    const std::uint16_t v = (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  std::optional<std::uint32_t> u24() {
    if (!check(3)) return std::nullopt;
    const std::uint32_t v = (std::uint32_t{data_[pos_]} << 16) |
                            (std::uint32_t{data_[pos_ + 1]} << 8) |
                            data_[pos_ + 2];
    pos_ += 3;
    return v;
  }
  std::optional<std::uint32_t> u32() {
    if (!check(4)) return std::nullopt;
    const auto hi = u16();
    const auto lo = u16();
    return (std::uint32_t{*hi} << 16) | *lo;
  }
  std::optional<std::uint64_t> u64() {
    if (!check(8)) return std::nullopt;
    const auto hi = u32();
    const auto lo = u32();
    return (std::uint64_t{*hi} << 32) | *lo;
  }
  // MQTT-style base-128 varint: little-endian digits, msb = continue.
  // Rejects values longer than max_digits (overlong encodings included) and
  // varints cut off by the end of the buffer.
  std::optional<std::uint32_t> varu32(std::size_t max_digits = 4) {
    if (!ok()) return std::nullopt;
    std::uint32_t value = 0;
    std::uint32_t multiplier = 1;
    for (std::size_t digits = 0;; ++digits) {
      if (digits >= max_digits) return fail_at(CodecError::kBadVarint, pos_);
      if (remaining() < 1) return fail_at(CodecError::kUnderflow, pos_);
      const std::uint8_t digit = data_[pos_++];
      value += (digit & 0x7f) * multiplier;
      multiplier *= 128;
      if ((digit & 0x80) == 0) break;
    }
    return value;
  }
  std::optional<std::span<const std::uint8_t>> raw(std::size_t n) {
    if (!check(n)) return std::nullopt;
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  // Consumes n bytes without producing them.
  bool skip(std::size_t n) {
    if (!check(n)) return false;
    pos_ += n;
    return true;
  }
  // Consumes expected.size() bytes and requires them to match exactly
  // (protocol magics, frame markers).
  bool expect(std::span<const std::uint8_t> expected) {
    if (!check(expected.size())) return false;
    if (!std::equal(expected.begin(), expected.end(),
                    data_.begin() + static_cast<std::ptrdiff_t>(pos_))) {
      fail_at(CodecError::kMismatch, pos_);
      return false;
    }
    pos_ += expected.size();
    return true;
  }
  bool expect_text(std::string_view expected) {
    return expect(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(expected.data()),
        expected.size()));
  }
  std::optional<std::string> str(std::size_t n) {
    const auto span = raw(n);
    if (!span) return std::nullopt;
    return to_string(*span);
  }
  // Length-prefixed strings mirroring ByteWriter::str8/str16.
  std::optional<std::string> str8() {
    const auto n = u8();
    if (!n) return std::nullopt;
    return str(*n);
  }
  std::optional<std::string> str16() {
    const auto n = u16();
    if (!n) return std::nullopt;
    return str(*n);
  }

  std::span<const std::uint8_t> rest() const { return data_.subspan(pos_); }

 private:
  // Latches the first error; all subsequent accessors keep failing.
  bool check(std::size_t need) {
    if (!ok()) return false;
    if (remaining() < need) {
      fail_at(CodecError::kUnderflow, pos_);
      return false;
    }
    return true;
  }
  std::nullopt_t fail_at(CodecError error, std::size_t offset) {
    if (error_ == CodecError::kNone) {
      error_ = error;
      error_pos_ = offset;
    }
    return std::nullopt;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  CodecError error_ = CodecError::kNone;
  std::size_t error_pos_ = 0;
};

}  // namespace ofh::util
