#include "util/ipv4.h"

#include <charconv>

namespace ofh::util {

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(static_cast<unsigned>(octet(i)));
  }
  return out;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr(value);
}

std::string Cidr::to_string() const {
  return base_.to_string() + "/" + std::to_string(prefix_len_);
}

std::optional<Cidr> Cidr::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto base = Ipv4Addr::parse(text.substr(0, slash));
  if (!base) return std::nullopt;
  int len = 0;
  const auto len_text = text.substr(slash + 1);
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      len < 0 || len > 32) {
    return std::nullopt;
  }
  return Cidr(*base, len);
}

}  // namespace ofh::util
