// IPv4 address and CIDR prefix types used across the simulator, scanner and
// telescope. Addresses are value types wrapping a host-order 32-bit integer.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ofh::util {

// An IPv4 address in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  std::string to_string() const;

  // Parses dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t value_ = 0;
};

// A CIDR prefix, e.g. 10.0.0.0/8. Prefix length 0..32.
class Cidr {
 public:
  constexpr Cidr() = default;
  constexpr Cidr(Ipv4Addr base, int prefix_len)
      : base_(Ipv4Addr(prefix_len == 0 ? 0u
                                       : (base.value() &
                                          (~std::uint32_t{0}
                                           << (32 - prefix_len))))),
        prefix_len_(prefix_len) {}

  constexpr Ipv4Addr base() const { return base_; }
  constexpr int prefix_len() const { return prefix_len_; }

  // Number of addresses covered (2^(32-len)); 2^32 reported as 0x100000000.
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - prefix_len_);
  }

  constexpr bool contains(Ipv4Addr addr) const {
    if (prefix_len_ == 0) return true;
    const std::uint32_t mask = ~std::uint32_t{0} << (32 - prefix_len_);
    return (addr.value() & mask) == base_.value();
  }

  constexpr Ipv4Addr first() const { return base_; }
  constexpr Ipv4Addr last() const {
    return Ipv4Addr(base_.value() + static_cast<std::uint32_t>(size() - 1));
  }

  std::string to_string() const;
  static std::optional<Cidr> parse(std::string_view text);

  constexpr auto operator<=>(const Cidr&) const = default;

 private:
  Ipv4Addr base_;
  int prefix_len_ = 32;
};

}  // namespace ofh::util
