#include "util/table.h"

#include <algorithm>

namespace ofh::util {

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& row,
                            std::string& out) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      out += "| ";
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out += cell;
      out.append(widths[i] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    out += "|";
    out.append(widths[i] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace ofh::util
