// Counting and distribution helpers used by the analysis/report layer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ofh::util {

// Ordered counter over string keys with ranked extraction.
class Counter {
 public:
  void add(const std::string& key, std::uint64_t n = 1) { counts_[key] += n; }

  std::uint64_t count(const std::string& key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& [key, n] : counts_) sum += n;
    return sum;
  }

  std::size_t distinct() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }

  // Entries sorted by descending count, ties broken by key for determinism.
  std::vector<std::pair<std::string, std::uint64_t>> ranked() const {
    std::vector<std::pair<std::string, std::uint64_t>> out(counts_.begin(),
                                                           counts_.end());
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    return out;
  }

  const std::map<std::string, std::uint64_t>& raw() const { return counts_; }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

// Running scalar summary (count/mean/min/max).
class Summary {
 public:
  void add(double x) {
    if (count_ == 0 || x < min_) min_ = x;
    if (count_ == 0 || x > max_) max_ = x;
    sum_ += x;
    ++count_;
  }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  // Empty summaries have no extrema: nullopt, not a 0.0 indistinguishable
  // from a real observation.
  std::optional<double> min() const {
    return count_ ? std::optional<double>(min_) : std::nullopt;
  }
  std::optional<double> max() const {
    return count_ ? std::optional<double>(max_) : std::nullopt;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0, min_ = 0, max_ = 0;
};

}  // namespace ofh::util
