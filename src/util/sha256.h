// Minimal SHA-256 (FIPS 180-4) used to fingerprint simulated malware
// payloads, mirroring the paper's use of SHA-256 hashes (Appendix Table 13).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace ofh::util {

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }

  // Finalizes and returns the 32-byte digest; the object must be reset()
  // before reuse.
  std::array<std::uint8_t, 32> digest();

  // One-shot convenience returning lowercase hex.
  static std::string hex_digest(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace ofh::util
