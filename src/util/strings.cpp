#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <limits>

namespace ofh::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  return contains(to_lower(haystack), to_lower(needle));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::int64_t parse_i64(std::string_view text, std::int64_t fallback) {
  text = trim(text);
  bool negative = false;
  if (!text.empty() && (text.front() == '-' || text.front() == '+')) {
    negative = text.front() == '-';
    text.remove_prefix(1);
  }
  bool any = false;
  std::uint64_t magnitude = 0;
  constexpr std::uint64_t kMax =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  const std::uint64_t limit = negative ? kMax + 1 : kMax;
  for (const char c : text) {
    if (c < '0' || c > '9') break;
    any = true;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (magnitude > (limit - digit) / 10) {
      magnitude = limit;  // saturate
      break;
    }
    magnitude = magnitude * 10 + digit;
  }
  if (!any) return fallback;
  // Unsigned negation is modular, so the cast maps kMax+1 to INT64_MIN
  // without overflowing.
  if (negative) return static_cast<std::int64_t>(-magnitude);
  return static_cast<std::int64_t>(magnitude);
}

std::uint64_t parse_u64(std::string_view text, std::uint64_t fallback) {
  text = trim(text);
  if (!text.empty() && text.front() == '-') return fallback;
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);
  bool any = false;
  std::uint64_t value = 0;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  for (const char c : text) {
    if (c < '0' || c > '9') break;
    any = true;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (kMax - digit) / 10) return kMax;  // saturate
    value = value * 10 + digit;
  }
  return any ? value : fallback;
}

std::string with_commas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string hex(const std::vector<std::uint8_t>& data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const auto b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace ofh::util
