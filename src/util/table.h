// ASCII table renderer used by the bench harnesses to print the paper's
// tables side by side with measured values.
#pragma once

#include <string>
#include <vector>

namespace ofh::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  // Renders with column alignment and a header separator.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ofh::util
