#include "util/thread_pool.h"

#include "obs/metrics.h"

namespace ofh::util {

namespace {

// Scheduling telemetry is Domain::kWall: at scan_threads=1 the parallel
// runner bypasses the pool entirely, so these counts legitimately differ
// across thread settings and must stay out of the deterministic exports.
struct PoolMetrics {
  obs::Counter tasks = obs::counter("threadpool.tasks_run", obs::Domain::kWall);
  obs::Counter spawned =
      obs::counter("threadpool.threads_spawned", obs::Domain::kWall);
  obs::Histogram queue_depth =
      obs::histogram("threadpool.queue_depth", obs::Domain::kWall);
};

const PoolMetrics& metrics() {
  static const PoolMetrics m;
  return m;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  metrics().spawned.inc(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

unsigned ThreadPool::default_thread_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    metrics().tasks.inc();
    metrics().queue_depth.observe(queue_.size());
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace ofh::util
