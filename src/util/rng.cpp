#include "util/rng.h"

#include <cmath>

namespace ofh::util {

double Rng::log_(double x) { return std::log(x); }

}  // namespace ofh::util
