// Fixed-size worker thread pool. Used by sim::ParallelRunner to execute
// independent simulation shards; kept deliberately minimal — submit() and
// wait_idle() — because determinism is achieved by construction one level
// up (each task writes its own result slot; merge order never depends on
// completion order).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ofh::util {

class ThreadPool {
 public:
  // Spawns `threads` workers (at least one).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues a task; tasks may be submitted from any thread.
  void submit(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle. Establishes a
  // happens-before edge between all completed tasks and the caller.
  void wait_idle();

  // std::thread::hardware_concurrency(), clamped to >= 1.
  static unsigned default_thread_count();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ofh::util
