// Deterministic pseudo-random number generation. Every stochastic component
// of the simulation derives its stream from a single study seed so that runs
// are exactly replayable; sub-streams are forked by label to decouple modules.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string_view>
#include <vector>

namespace ofh::util {

// SplitMix64: used for seeding and for stateless address-keyed decisions.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a 64-bit over a string; used to derive labelled sub-seeds.
constexpr std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// xoshiro256** — fast, high-quality generator for simulation streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x++);
  }

  // Forks an independent stream identified by a label.
  Rng fork(std::string_view label) const {
    return Rng(state_[0] ^ fnv1a(label) ^ splitmix64(state_[3]));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Rejection-free multiply-shift; bias is negligible for bound << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

  // Exponential inter-arrival with the given mean (for Poisson processes).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    // -mean * ln(u) without <cmath> in a header: delegate to std::log.
    return -mean * log_(u);
  }

  // Picks an index according to non-negative weights; returns weights.size()
  // only if all weights are zero.
  std::size_t weighted(const std::vector<double>& weights) {
    double total = 0;
    for (const double w : weights) total += w;
    if (total <= 0) return weights.size();
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.size() - 1;
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[below(items.size())];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double log_(double x);

  std::uint64_t state_[4] = {};
};

}  // namespace ofh::util
