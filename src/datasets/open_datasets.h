// Open scan datasets: Project-Sonar-like and Shodan-like snapshots of the
// simulated Internet (paper §3.1.2). Each service has its own coverage
// model — which protocols it publishes, which ports it scans, and what
// fraction of exposed hosts it reaches (allow-listing, scan origin and
// refresh cadence all reduce coverage; the paper's Table 4 quantifies the
// resulting deltas). Snapshots are generated independently of our scanner,
// so correlating the two is a meaningful check.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "devices/population.h"
#include "proto/service.h"

namespace ofh::datasets {

struct CoverageModel {
  std::string name;
  // Protocol -> fraction of exposed hosts this service's dataset includes.
  // Missing protocol = no dataset published (Table 4's "NA").
  std::map<proto::Protocol, double> coverage;
  // Ports scanned for Telnet: Project Sonar scans only 23, our scan (and
  // Shodan) also covers 2323 — the paper's explanation for the ZMap scan
  // finding more Telnet hosts than Sonar.
  bool telnet_includes_2323 = true;
};

// The two open datasets the paper uses, with coverage calibrated to the
// Table 4 ratios.
CoverageModel project_sonar_model();
CoverageModel shodan_model();

struct DatasetEntry {
  util::Ipv4Addr host;
  std::uint16_t port = 0;
  proto::Protocol protocol = proto::Protocol::kTelnet;
  std::string banner;
};

class DatasetSnapshot {
 public:
  DatasetSnapshot(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void add(DatasetEntry entry);
  const std::vector<DatasetEntry>& entries() const { return entries_; }
  std::uint64_t unique_hosts(proto::Protocol protocol) const;
  bool has_protocol(proto::Protocol protocol) const;
  bool contains(util::Ipv4Addr host, proto::Protocol protocol) const;

 private:
  std::string name_;
  std::vector<DatasetEntry> entries_;
  std::map<proto::Protocol, std::set<std::uint32_t>> hosts_;
};

// Generates a snapshot of the population under a coverage model. The
// snapshot is a view of ground truth thinned by coverage — it models the
// *output* of that service's own scanning pipeline, which we do not re-run.
DatasetSnapshot generate_snapshot(const CoverageModel& model,
                                  const devices::Population& population,
                                  std::uint64_t seed);

// Correlation of our scan's per-protocol host sets against a snapshot
// (paper §3.1.2: "we correlate the results identified in all datasets").
struct Correlation {
  std::uint64_t ours = 0;
  std::uint64_t theirs = 0;
  std::uint64_t overlap = 0;
};
Correlation correlate(const std::set<std::uint32_t>& our_hosts,
                      const DatasetSnapshot& snapshot,
                      proto::Protocol protocol);

}  // namespace ofh::datasets
