#include "datasets/open_datasets.h"

#include "util/rng.h"

namespace ofh::datasets {

using proto::Protocol;

CoverageModel project_sonar_model() {
  CoverageModel model;
  model.name = "Project Sonar";
  // Ratios of Table 4 (Sonar / ZMap). No AMQP or XMPP datasets.
  model.coverage = {
      {Protocol::kCoap, 438'098.0 / 618'650.0},   // 0.708
      {Protocol::kUpnp, 395'331.0 / 1'381'940.0}, // 0.286
      {Protocol::kMqtt, 3'921'585.0 / 4'842'465.0},  // 0.810
      {Protocol::kTelnet, 6'004'956.0 / 7'096'465.0},  // 0.846
  };
  model.telnet_includes_2323 = false;  // Sonar scans port 23 only
  return model;
}

CoverageModel shodan_model() {
  CoverageModel model;
  model.name = "Shodan";
  // Shodan's crawler indexes services very differently per protocol: near
  // full CoAP coverage, but networks widely blocklist its Telnet/MQTT
  // crawlers (the paper's motivation for running its own scans).
  model.coverage = {
      {Protocol::kAmqp, 18'701.0 / 34'542.0},      // 0.541
      {Protocol::kXmpp, 315'861.0 / 423'867.0},    // 0.745
      {Protocol::kCoap, 590'740.0 / 618'650.0},    // 0.955
      {Protocol::kUpnp, 433'571.0 / 1'381'940.0},  // 0.314
      {Protocol::kMqtt, 162'216.0 / 4'842'465.0},  // 0.034
      {Protocol::kTelnet, 188'291.0 / 7'096'465.0},  // 0.027
  };
  return model;
}

void DatasetSnapshot::add(DatasetEntry entry) {
  hosts_[entry.protocol].insert(entry.host.value());
  entries_.push_back(std::move(entry));
}

std::uint64_t DatasetSnapshot::unique_hosts(Protocol protocol) const {
  const auto it = hosts_.find(protocol);
  return it == hosts_.end() ? 0 : it->second.size();
}

bool DatasetSnapshot::has_protocol(Protocol protocol) const {
  return hosts_.count(protocol) != 0;
}

bool DatasetSnapshot::contains(util::Ipv4Addr host,
                               Protocol protocol) const {
  const auto it = hosts_.find(protocol);
  return it != hosts_.end() && it->second.count(host.value()) != 0;
}

DatasetSnapshot generate_snapshot(const CoverageModel& model,
                                  const devices::Population& population,
                                  std::uint64_t seed) {
  DatasetSnapshot snapshot(model.name);
  util::Rng rng = util::Rng(seed).fork("dataset:" + model.name);

  for (std::uint64_t i = 0; i < population.size(); ++i) {
    const Protocol primary = population.primary_at(i);
    const util::Ipv4Addr address = population.address_at(i);
    const auto coverage = model.coverage.find(primary);
    if (coverage == model.coverage.end()) continue;  // protocol not published

    std::uint16_t port = proto::default_port(primary);
    if (primary == Protocol::kTelnet) {
      // Mirror the device's own port selection (see Device::install_telnet).
      const bool alt_port = (address.value() % 16) == 0;
      if (alt_port) {
        if (!model.telnet_includes_2323) continue;  // invisible to Sonar
        port = 2323;
      }
    }

    // Coverage is expressed over all exposed hosts; hosts already excluded
    // by the port model count against it, so rescale the per-host draw.
    double p = coverage->second;
    if (primary == Protocol::kTelnet && !model.telnet_includes_2323) {
      p = std::min(1.0, p / (15.0 / 16.0));
    }
    if (!rng.chance(p)) continue;

    DatasetEntry entry;
    entry.host = address;
    entry.port = port;
    entry.protocol = primary;
    const devices::DeviceModel* device_model = population.model_at(i);
    entry.banner = device_model != nullptr
                       ? std::string(device_model->identifier)
                       : std::string{};
    snapshot.add(std::move(entry));
  }
  return snapshot;
}

Correlation correlate(const std::set<std::uint32_t>& our_hosts,
                      const DatasetSnapshot& snapshot,
                      Protocol protocol) {
  Correlation result;
  result.ours = our_hosts.size();
  result.theirs = snapshot.unique_hosts(protocol);
  for (const auto host : our_hosts) {
    if (snapshot.contains(util::Ipv4Addr(host), protocol)) ++result.overlap;
  }
  return result;
}

}  // namespace ofh::datasets
