// Fault-tolerant coordinator for the distributed scan fleet: dispatches
// scan shards (core/scan_shard.h) to worker processes over unix-domain
// sockets, survives worker crashes, and merges results byte-identically to
// the in-process path.
//
// Robustness model (DESIGN.md §15 has the full failure matrix):
//   * Liveness: workers heartbeat between progress strides; a connection
//     silent past job_timeout_ms is presumed wedged. EOF/SIGKILL surface
//     immediately via poll.
//   * Crash recovery: a failed attempt requeues its job with exponential
//     backoff and an entry in the retry ledger; jobs are pure functions of
//     (config, job), so a re-run on any worker yields identical bytes.
//   * Hostile input: a frame that fails to decode — torn, truncated,
//     tag-flipped, lying length — quarantines the connection (its framing
//     can no longer be trusted) and requeues the job. A wedged worker is
//     quarantined but kept readable so a late duplicate result can still
//     be counted (and dropped) rather than confused for a new frame.
//   * Idempotence: the first well-formed result for a job wins; duplicates
//     from retried attempts are dropped. Progress strides dedup by per-job
//     max stride, and the kDone progress event is synthesized exactly once
//     at apply time, so the published event sequence is byte-identical no
//     matter how many attempts a job took.
//   * Graceful degradation: jobs that exhaust max_attempts — or a fleet
//     with no live workers at all — run inline on the coordinator thread,
//     so Coordinator::run() always returns a complete result set.
//
// Threading: run() is a blocking single-threaded poll loop (the same shape
// as core/status_service.cpp's); there is nothing to race. Wall-clock time
// is used for liveness decisions only and never reaches deterministic
// output (.ofh-lint.toml allows it for src/dist/).
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/scan_shard.h"
#include "dist/protocol.h"
#include "util/bytes.h"

namespace ofh::dist {

struct CoordinatorOptions {
  // Unix-socket path to listen on for external ofh-worker processes
  // (empty = no listener; forked workers only).
  std::string listen_path;
  // Workers to fork over socketpairs at start() (fork, no exec: the child
  // runs dist::serve_worker_fd and _exit()s; it never returns to the
  // caller's stack).
  unsigned fork_workers = 0;
  // run() waits up to wait_timeout_ms for this many HELLOs before falling
  // back to inline execution. Forked workers count toward it.
  unsigned wait_workers = 0;
  int wait_timeout_ms = 30'000;
  // A connection silent (no progress, heartbeat or result) this long while
  // owning a job is presumed wedged: job requeued, worker quarantined.
  int job_timeout_ms = 120'000;
  // Requeue backoff: base << min(attempt, 6) milliseconds.
  int backoff_base_ms = 50;
  // Attempts before a job stops being offered to workers and runs inline.
  unsigned max_attempts = 3;
  // Crash drill for tests/CI: SIGKILL the first worker that reports
  // progress (once per run). Exercises the full requeue/merge path.
  bool kill_worker_after_progress = false;
};

// One requeue decision, for tests and post-mortems. Deterministic fields
// only (which worker failed and when it was detected are wall-clock facts;
// the ledger records the job/attempt/reason sequence).
struct RetryLedgerEntry {
  std::uint32_t job_index = 0;
  std::uint32_t epoch = 0;  // the attempt that failed
  std::string worker;
  std::string reason;  // "worker-eof" | "timeout" | "malformed-result" | ...
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Binds the listener (if configured) and forks workers. Returns false
  // with error() set on socket failures; a false start() still leaves the
  // coordinator usable — run() degrades to inline execution.
  bool start();

  // Executes the batch: dispatches to workers, recovers from crashes,
  // returns results in job order (always complete — stragglers run
  // inline). Also absorbs each remote result's trace/metric payload into
  // the global registries, exactly as in-process shards would have
  // recorded them. Call from one thread at a time.
  std::vector<core::ScanShardResult> run(
      const core::StudyConfig& config,
      const std::vector<core::ScanShardJob>& jobs,
      const core::ScanShardProgressSink& sink);

  // Sends SHUTDOWN to live workers, closes sockets, reaps forked children
  // (SIGKILL for quarantined ones). Idempotent; the destructor calls it.
  void shutdown();

  // Adopts an already-connected worker socket (tests inject fake workers
  // this way). pid < 0 = not a child of ours (never signaled or reaped).
  void adopt_worker_fd(int fd, int pid);

  const std::vector<RetryLedgerEntry>& retry_ledger() const {
    return retry_ledger_;
  }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  std::uint64_t inline_runs() const { return inline_runs_; }
  std::size_t live_workers() const;
  const std::string& error() const { return error_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct WorkerConn {
    int fd = -1;
    int pid = -1;          // forked child pid, or HELLO-claimed pid
    bool forked = false;   // pid is our child: signal + reap at shutdown
    std::string name;
    bool hello = false;
    bool dead = false;
    bool quarantined = false;  // no new jobs; fd still drained if open
    int job = -1;              // inflight job index, -1 = idle
    std::uint32_t epoch = 0;   // epoch of the inflight attempt
    util::Bytes in;
    util::Bytes out;  // pending JOB/SHUTDOWN bytes (sockets are nonblocking)
    Clock::time_point last_activity{};
  };

  struct JobState {
    bool applied = false;
    bool assigned = false;
    unsigned attempts = 0;        // dispatches so far (remote only)
    std::uint32_t next_epoch = 1;
    Clock::time_point ready_at{};  // backoff gate for the next dispatch
    std::uint64_t max_stride = 0;  // progress dedup across attempts
  };

  struct RunState {
    const core::StudyConfig* config = nullptr;
    const std::vector<core::ScanShardJob>* jobs = nullptr;
    const core::ScanShardProgressSink* sink = nullptr;
    std::vector<core::ScanShardResult> results;
    std::vector<JobState> states;
    std::size_t pending = 0;
    bool drill_fired = false;
  };

  void accept_ready();
  void read_worker(WorkerConn& worker, RunState& run);
  void flush_worker(WorkerConn& worker, RunState& run);
  bool handle_frame(WorkerConn& worker, std::span<const std::uint8_t> body,
                    RunState& run);
  void deliver_progress(RunState& run, std::uint32_t index,
                        const core::ScanShardProgress& progress);
  void apply_result(RunState& run, ResultFrame&& frame);
  void fail_assignment(WorkerConn& worker, RunState& run,
                       const std::string& reason);
  void quarantine(WorkerConn& worker, bool close_fd);
  void assign_jobs(RunState& run);
  void run_inline_if_stuck(RunState& run, Clock::time_point grace_deadline);
  void reap_children();

  CoordinatorOptions options_;
  int listen_fd_ = -1;
  std::vector<WorkerConn> workers_;
  std::vector<RetryLedgerEntry> retry_ledger_;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t inline_runs_ = 0;
  std::string error_;
};

}  // namespace ofh::dist
