#include "dist/worker.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "core/scan_shard.h"
#include "core/study.h"
#include "dist/protocol.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bytes.h"

namespace ofh::dist {
namespace {

// Blocking send of the whole buffer. MSG_NOSIGNAL: a coordinator that died
// mid-write must surface as EPIPE, not kill the worker with SIGPIPE.
bool send_all(int fd, const util::Bytes& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_frame(int fd, const util::Bytes& body) {
  return send_all(fd, net::wire_frame(body));
}

// Runs one job and streams progress/heartbeat/result frames. Returns false
// only on socket failure — the job itself cannot fail (it is a pure
// function of its inputs; a worker that dies mid-job is the coordinator's
// problem, surfaced as EOF).
bool execute_job(int fd, const JobFrame& frame) {
  // Fresh registries: the result payload must be exactly this job's deltas.
  obs::Registry::global().reset();
  obs::TraceRegistry::global().reset();
  obs::TraceRegistry::global().set_capacity(
      static_cast<std::size_t>(frame.packet_ring_capacity),
      static_cast<std::size_t>(frame.session_ring_capacity));

  core::StudyConfig config;
  config.seed = frame.seed;
  config.population_scale = frame.population_scale;
  config.scan_batch = frame.scan_batch;
  config.scan_attempts = frame.scan_attempts;
  config.fault_schedule = frame.fault_schedule;
  // Same hostile-input idiom as Study's constructor: out-of-range values
  // move to the nearest bound instead of reaching the pipeline. A valid
  // coordinator config round-trips unchanged, preserving purity.
  config = config.clamped();

  HeartbeatFrame accepted;
  accepted.job_index = frame.job.index;
  accepted.epoch = frame.epoch;
  bool io_ok = send_frame(fd, encode_heartbeat(accepted));

  std::uint64_t samples = 0;
  core::ScanShardResult result = core::run_scan_shard(
      config, frame.job, [&](const core::ScanShardProgress& progress) {
        if (!io_ok) return;  // coordinator gone: finish silently, fail after
        if (progress.kind == core::ScanShardProgressKind::kStride) {
          ProgressFrame stride;
          stride.job_index = frame.job.index;
          stride.epoch = frame.epoch;
          stride.resolved = progress.resolved;
          stride.sim_time = static_cast<std::uint64_t>(progress.sim_time);
          io_ok = send_frame(fd, encode_progress(stride));
        } else if (progress.kind == core::ScanShardProgressKind::kSample) {
          // Samples fire every 1024 sim steps; thin them ~1000x for the
          // liveness channel so heartbeats stay off the hot path.
          if ((++samples & 1023u) == 0) {
            HeartbeatFrame beat;
            beat.job_index = frame.job.index;
            beat.epoch = frame.epoch;
            beat.resolved = progress.resolved;
            beat.sim_time = static_cast<std::uint64_t>(progress.sim_time);
            io_ok = send_frame(fd, encode_heartbeat(beat));
          }
        }
        // kDone is synthesized by the coordinator when the result applies,
        // so a crashed-then-retried job still publishes exactly one.
      });

  ResultFrame out;
  out.job_index = frame.job.index;
  out.epoch = frame.epoch;
  const auto shard = static_cast<std::uint16_t>(frame.job.index + 1);
  for (const obs::TraceShardStats& stats :
       obs::TraceRegistry::global().live_stats()) {
    if (stats.shard == shard) {
      out.trace_recorded = stats.recorded;
      out.trace_dropped = stats.dropped;
    }
  }
  // merged() orders by (time, shard, seq); within one shard that is append
  // order, which is exactly what TraceRegistry::absorb expects back.
  for (const obs::TraceEvent& event : obs::TraceRegistry::global().merged()) {
    if (event.shard == shard) out.trace_events.push_back(event);
  }
  out.metrics = obs::Registry::global().snapshot();
  out.shard = std::move(result);
  if (!send_frame(fd, encode_result(out))) return false;
  return io_ok;
}

}  // namespace

int serve_worker_fd(int fd, const std::string& name) {
  HelloFrame hello;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  hello.name = name;
  if (!send_frame(fd, encode_hello(hello))) {
    ::close(fd);
    return 1;
  }

  util::Bytes in;
  std::array<std::uint8_t, 65536> chunk;
  int exit_code = 0;
  bool running = true;
  while (running) {
    const net::FrameView frame = net::peek_frame(in, kMaxJobBody);
    if (frame.status == net::FrameStatus::kOversized) {
      // The stream is unrecoverable past a lying length: reply and hang up.
      send_frame(fd, net::wire_error_body(net::WireError::kOversized,
                                          "frame exceeds job body cap"));
      exit_code = 1;
      break;
    }
    if (frame.status == net::FrameStatus::kNeedMore) {
      const ssize_t n = ::recv(fd, chunk.data(), chunk.size(), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        exit_code = 1;
        break;
      }
      if (n == 0) break;  // orderly EOF: coordinator closed
      in.insert(in.end(), chunk.data(), chunk.data() + n);
      continue;
    }
    const std::span<const std::uint8_t> body = frame.body;
    const std::uint8_t tag = body.empty() ? 0 : body[0];
    bool io_ok = true;
    if (tag == static_cast<std::uint8_t>(MsgTag::kJob)) {
      if (const auto job = decode_job(body)) {
        io_ok = execute_job(fd, *job);
      } else {
        io_ok = send_frame(fd,
                           net::wire_error_body(net::WireError::kMalformed,
                                                "job frame failed to decode"));
      }
    } else if (tag == static_cast<std::uint8_t>(MsgTag::kShutdown)) {
      send_frame(fd, encode_shutdown_ack());
      running = false;
    } else {
      io_ok = send_frame(fd, net::wire_error_body(net::WireError::kUnknownTag,
                                                  "unexpected frame tag"));
    }
    net::consume_frame(in, frame.body.size());
    if (!io_ok) {
      exit_code = 1;
      break;
    }
  }
  ::close(fd);
  return exit_code;
}

int run_worker(const WorkerOptions& options) {
  sockaddr_un addr{};
  if (options.connect_path.empty() ||
      options.connect_path.size() >= sizeof(addr.sun_path)) {
    return 2;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.connect_path.c_str(),
              options.connect_path.size() + 1);
  int waited_ms = 0;
  while (true) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return 2;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return serve_worker_fd(fd, options.name);
    }
    ::close(fd);
    if (waited_ms >= options.connect_wait_ms) return 2;
    ::usleep(50 * 1000);  // workers usually start before the listener binds
    waited_ms += 50;
  }
}

}  // namespace ofh::dist
