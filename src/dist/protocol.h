// Wire protocol for the distributed shard fleet: the typed frames a
// coordinator (dist/coordinator.h) and a worker process (dist/worker.h)
// exchange over a unix-domain stream. Transport framing and the typed-error
// envelope are net/wire.h — the same codec the status endpoint speaks — so
// a worker answering a frame it cannot parse returns the identical
// `0x7f code str16` error shape tools already know how to decode.
//
// Body layout: first byte is the MsgTag; responses set kWireResponseBit.
// All integers are big-endian via util::ByteWriter/ByteReader; doubles
// travel as their IEEE-754 bit pattern (std::bit_cast to uint64), which is
// exact — the worker reconstructs bit-identical config values, a
// prerequisite for the byte-identical-merge contract.
//
// Robustness contract: every decode_* returns std::nullopt on ANY defect —
// truncation, trailing bytes, wrong tag, out-of-range enum, lying length
// prefix — and never reads past the span (ByteReader latches on
// underflow). Reserve sizes are bounded by the bytes actually remaining,
// so a hostile count prefix cannot balloon allocation
// (tests/dist_test.cpp drives every frame through an adversarial mutation
// harness under ASan/UBSan).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/scan_shard.h"
#include "net/faults.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bytes.h"

namespace ofh::dist {

inline constexpr std::uint32_t kDistProtocolVersion = 1;

// Per-direction frame body caps (framing rejects larger declared lengths
// before buffering). Control traffic is tiny; a job carries a fault
// schedule (bounded by the cap, not trusted counts); a result carries the
// shard's scan records, trace ring contents and metric rows.
inline constexpr std::size_t kMaxControlBody = 512;
// Sized for the encoder's own worst case: 0xffff fault windows at 35 bytes
// each (~2.2 MiB) plus the fixed fields — so no frame encode_job can emit
// is ever rejected by the worker's framing cap (tests/dist_codec_test.cpp
// pins this).
inline constexpr std::size_t kMaxJobBody = std::size_t{4} << 20;
inline constexpr std::size_t kMaxResultBody = std::size_t{256} << 20;

// First body byte. Workers answer kJob with kProgress*/kResult frames and
// answer kShutdown with its response bit; the coordinator never expects
// unsolicited tags beyond these.
enum class MsgTag : std::uint8_t {
  kHello = 1,      // worker -> coordinator, once, on connect
  kJob = 2,        // coordinator -> worker: run one scan shard
  kProgress = 3,   // worker -> coordinator: sweep stride crossed
  kResult = 4,     // worker -> coordinator: finished shard payload
  kShutdown = 5,   // coordinator -> worker: drain and exit
  kHeartbeat = 6,  // worker -> coordinator: liveness between strides
};

// worker -> coordinator greeting; a version mismatch quarantines the
// connection before any job is risked on it.
struct HelloFrame {
  std::uint32_t version = kDistProtocolVersion;
  std::uint64_t pid = 0;
  std::string name;
};

// coordinator -> worker: one scan shard plus the exact StudyConfig subset
// run_scan_shard reads and the trace-ring capacities, so the worker's
// recorder evicts identically to an in-process run. `epoch` is the
// coordinator's attempt counter for this job; it rides every reply so late
// frames from a superseded attempt are attributable.
struct JobFrame {
  std::uint32_t epoch = 0;
  core::ScanShardJob job;
  // StudyConfig subset (the only fields run_scan_shard reads).
  std::uint64_t seed = 0;
  double population_scale = 1.0;
  std::uint32_t scan_batch = 0;
  std::uint32_t scan_attempts = 0;
  net::FaultSchedule fault_schedule;
  // TraceRegistry capacities active in the coordinator process.
  std::uint64_t packet_ring_capacity = 0;
  std::uint64_t session_ring_capacity = 0;
};

// worker -> coordinator: a kSweepProgressStride boundary was crossed.
// Mirrors ScanShardProgressKind::kStride payloads exactly; the coordinator
// dedups by stride index across retries.
struct ProgressFrame {
  std::uint32_t job_index = 0;
  std::uint32_t epoch = 0;
  std::uint64_t resolved = 0;
  std::uint64_t sim_time = 0;
};

// worker -> coordinator: liveness between strides (population build and
// early sweep produce no strides for a while). Also refreshes the live
// sweep counter; never published as a deterministic progress event.
struct HeartbeatFrame {
  std::uint32_t job_index = 0;
  std::uint32_t epoch = 0;
  std::uint64_t resolved = 0;
  std::uint64_t sim_time = 0;
};

// worker -> coordinator: the completed shard. Everything the in-process
// path would have produced: the ScanShardResult (records included), the
// shard's trace-ring contents post-eviction with its recorded/dropped
// counters, and the worker's full metric snapshot (scan-shard deltas; the
// worker resets its registries before the job).
struct ResultFrame {
  std::uint32_t job_index = 0;
  std::uint32_t epoch = 0;
  core::ScanShardResult shard;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
  std::vector<obs::TraceEvent> trace_events;
  std::vector<obs::MetricRow> metrics;
};

util::Bytes encode_hello(const HelloFrame& frame);
util::Bytes encode_job(const JobFrame& frame);
util::Bytes encode_progress(const ProgressFrame& frame);
util::Bytes encode_heartbeat(const HeartbeatFrame& frame);
util::Bytes encode_result(const ResultFrame& frame);
// kShutdown and its ack are tag-only bodies.
util::Bytes encode_shutdown();
util::Bytes encode_shutdown_ack();

std::optional<HelloFrame> decode_hello(std::span<const std::uint8_t> body);
std::optional<JobFrame> decode_job(std::span<const std::uint8_t> body);
std::optional<ProgressFrame> decode_progress(
    std::span<const std::uint8_t> body);
std::optional<HeartbeatFrame> decode_heartbeat(
    std::span<const std::uint8_t> body);
std::optional<ResultFrame> decode_result(std::span<const std::uint8_t> body);

}  // namespace ofh::dist
