// Distributed scan worker: one process, one coordinator connection, jobs
// executed strictly sequentially. A worker is deliberately stateless
// between jobs — it resets the metric and trace registries before every
// shard so the result payload contains exactly the deltas an in-process
// run of the same job would have produced (dist/coordinator.h absorbs
// them; obs/metrics.h and obs/trace.h explain why the fold is exact).
//
// Failure model: the worker trusts nothing it reads. A frame that fails to
// decode gets a typed net/wire.h error reply (the coordinator quarantines
// the connection); an oversized frame gets the error and a hang-up; EOF is
// an orderly exit. The worker never retries on its own — retry policy is
// the coordinator's job, and a crashed worker (SIGKILL included) simply
// looks like EOF on the other end.
#pragma once

#include <string>

namespace ofh::dist {

// Serves one coordinator connection on an already-connected stream socket
// (blocking I/O; takes ownership of fd and closes it). Sends a HELLO
// first, then loops on frames until SHUTDOWN or EOF. Returns the process
// exit code: 0 for an orderly end, 1 on a protocol or socket failure.
int serve_worker_fd(int fd, const std::string& name);

// tools/ofh-worker entry: connect to a coordinator's unix socket and
// serve. Retries the connect for connect_wait_ms (workers often start
// before the coordinator binds its listener).
struct WorkerOptions {
  std::string connect_path;
  std::string name = "worker";
  int connect_wait_ms = 15000;
};
int run_worker(const WorkerOptions& options);

}  // namespace ofh::dist
