#include "dist/protocol.h"

#include <algorithm>
#include <bit>
#include <cstddef>

#include "net/wire.h"

namespace ofh::dist {
namespace {

// Fixed encoded sizes used to bound reserve() against lying count
// prefixes: a count may promise at most remaining / element_size entries.
constexpr std::size_t kFaultWindowBytes = 1 + 8 + 8 + 5 + 5 + 8;
constexpr std::size_t kMinScanRecordBytes = 4 + 2 + 1 + 8 + 2;  // empty banner
constexpr std::size_t kTraceEventBytes = 8 + 8 + 8 + 4 + 4 + 2 + 2 + 1 + 1 + 1;
constexpr std::size_t kMinMetricRowBytes = 1 + 1 + 1 + 8;  // empty name

void put_f64(util::ByteWriter& writer, double value) {
  writer.u64(std::bit_cast<std::uint64_t>(value));
}

std::optional<double> get_f64(util::ByteReader& reader) {
  const auto bits = reader.u64();
  if (!bits) return std::nullopt;
  return std::bit_cast<double>(*bits);
}

void put_cidr(util::ByteWriter& writer, const util::Cidr& cidr) {
  writer.u32(cidr.base().value());
  writer.u8(static_cast<std::uint8_t>(cidr.prefix_len()));
}

std::optional<util::Cidr> get_cidr(util::ByteReader& reader) {
  const auto base = reader.u32();
  const auto prefix = reader.u8();
  if (!base || !prefix.has_value() || *prefix > 32) return std::nullopt;
  return util::Cidr(util::Ipv4Addr(*base), static_cast<int>(*prefix));
}

void put_fault_schedule(util::ByteWriter& writer,
                        const net::FaultSchedule& schedule) {
  put_f64(writer, schedule.uniform_loss);
  put_f64(writer, schedule.duplicate_rate);
  put_f64(writer, schedule.reorder_rate);
  writer.u64(static_cast<std::uint64_t>(schedule.reorder_delay));
  writer.u8(schedule.burst.enabled ? 1 : 0);
  put_f64(writer, schedule.burst.p_enter);
  put_f64(writer, schedule.burst.p_exit);
  put_f64(writer, schedule.burst.loss_good);
  put_f64(writer, schedule.burst.loss_bad);
  writer.u64(static_cast<std::uint64_t>(schedule.burst.slot));
  writer.u16(static_cast<std::uint16_t>(
      std::min<std::size_t>(schedule.windows.size(), 0xffff)));
  for (std::size_t i = 0;
       i < std::min<std::size_t>(schedule.windows.size(), 0xffff); ++i) {
    const net::FaultWindow& window = schedule.windows[i];
    writer.u8(static_cast<std::uint8_t>(window.kind));
    writer.u64(static_cast<std::uint64_t>(window.start));
    writer.u64(static_cast<std::uint64_t>(window.end));
    put_cidr(writer, window.scope);
    put_cidr(writer, window.peer);
    writer.u64(static_cast<std::uint64_t>(window.magnitude));
  }
}

bool get_fault_schedule(util::ByteReader& reader,
                        net::FaultSchedule& schedule) {
  const auto uniform_loss = get_f64(reader);
  const auto duplicate_rate = get_f64(reader);
  const auto reorder_rate = get_f64(reader);
  const auto reorder_delay = reader.u64();
  const auto burst_enabled = reader.u8();
  const auto p_enter = get_f64(reader);
  const auto p_exit = get_f64(reader);
  const auto loss_good = get_f64(reader);
  const auto loss_bad = get_f64(reader);
  const auto slot = reader.u64();
  const auto window_count = reader.u16();
  if (!window_count) return false;
  if (!burst_enabled || *burst_enabled > 1) return false;
  if (*window_count > reader.remaining() / kFaultWindowBytes) return false;
  schedule.uniform_loss = *uniform_loss;
  schedule.duplicate_rate = *duplicate_rate;
  schedule.reorder_rate = *reorder_rate;
  schedule.reorder_delay = static_cast<sim::Duration>(*reorder_delay);
  schedule.burst.enabled = *burst_enabled == 1;
  schedule.burst.p_enter = *p_enter;
  schedule.burst.p_exit = *p_exit;
  schedule.burst.loss_good = *loss_good;
  schedule.burst.loss_bad = *loss_bad;
  schedule.burst.slot = static_cast<sim::Duration>(*slot);
  schedule.windows.reserve(*window_count);
  for (std::uint16_t i = 0; i < *window_count; ++i) {
    const auto kind = reader.u8();
    const auto start = reader.u64();
    const auto end = reader.u64();
    const auto scope = get_cidr(reader);
    const auto peer = get_cidr(reader);
    const auto magnitude = reader.u64();
    if (!magnitude.has_value() || !scope || !peer) return false;
    if (*kind >= net::kFaultKindCount) return false;
    net::FaultWindow window;
    window.kind = static_cast<net::FaultKind>(*kind);
    window.start = static_cast<sim::Time>(*start);
    window.end = static_cast<sim::Time>(*end);
    window.scope = *scope;
    window.peer = *peer;
    window.magnitude = static_cast<sim::Duration>(*magnitude);
    schedule.windows.push_back(window);
  }
  return true;
}

bool valid_protocol(std::uint8_t value) {
  return value <= static_cast<std::uint8_t>(proto::Protocol::kS7);
}

bool valid_trace_type(std::uint8_t value) {
  return value <= static_cast<std::uint8_t>(obs::TraceEventType::kHostFault);
}

// Expects `reader` positioned one byte past a verified tag; a frame is
// well-formed only if the whole body was consumed with no latched error.
bool finished(const util::ByteReader& reader) {
  return reader.ok() && reader.done();
}

}  // namespace

util::Bytes encode_hello(const HelloFrame& frame) {
  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(MsgTag::kHello));
  writer.u32(frame.version);
  writer.u64(frame.pid);
  writer.str8(frame.name.substr(0, 0xff));
  return writer.take();
}

std::optional<HelloFrame> decode_hello(std::span<const std::uint8_t> body) {
  util::ByteReader reader(body);
  const auto tag = reader.u8();
  if (!tag || *tag != static_cast<std::uint8_t>(MsgTag::kHello)) {
    return std::nullopt;
  }
  HelloFrame frame;
  const auto version = reader.u32();
  const auto pid = reader.u64();
  auto name = reader.str8();
  if (!pid.has_value() || !name || !finished(reader)) return std::nullopt;
  frame.version = *version;
  frame.pid = *pid;
  frame.name = std::move(*name);
  return frame;
}

util::Bytes encode_job(const JobFrame& frame) {
  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(MsgTag::kJob));
  writer.u32(frame.epoch);
  writer.u32(frame.job.index);
  writer.u8(static_cast<std::uint8_t>(frame.job.protocol));
  writer.u64(frame.job.sweep_seed);
  writer.u64(static_cast<std::uint64_t>(frame.job.start));
  writer.u64(frame.job.sweep_total);
  writer.u64(frame.seed);
  put_f64(writer, frame.population_scale);
  writer.u32(frame.scan_batch);
  writer.u32(frame.scan_attempts);
  put_fault_schedule(writer, frame.fault_schedule);
  writer.u64(frame.packet_ring_capacity);
  writer.u64(frame.session_ring_capacity);
  return writer.take();
}

std::optional<JobFrame> decode_job(std::span<const std::uint8_t> body) {
  util::ByteReader reader(body);
  const auto tag = reader.u8();
  if (!tag || *tag != static_cast<std::uint8_t>(MsgTag::kJob)) {
    return std::nullopt;
  }
  JobFrame frame;
  const auto epoch = reader.u32();
  const auto index = reader.u32();
  const auto protocol = reader.u8();
  const auto sweep_seed = reader.u64();
  const auto start = reader.u64();
  const auto sweep_total = reader.u64();
  const auto seed = reader.u64();
  const auto population_scale = get_f64(reader);
  const auto scan_batch = reader.u32();
  const auto scan_attempts = reader.u32();
  if (!scan_attempts.has_value()) return std::nullopt;
  if (!valid_protocol(*protocol)) return std::nullopt;
  if (!get_fault_schedule(reader, frame.fault_schedule)) return std::nullopt;
  const auto packet_capacity = reader.u64();
  const auto session_capacity = reader.u64();
  if (!session_capacity.has_value() || !finished(reader)) return std::nullopt;
  frame.epoch = *epoch;
  frame.job.index = *index;
  frame.job.protocol = static_cast<proto::Protocol>(*protocol);
  frame.job.sweep_seed = *sweep_seed;
  frame.job.start = static_cast<sim::Time>(*start);
  frame.job.sweep_total = *sweep_total;
  frame.seed = *seed;
  frame.population_scale = *population_scale;
  frame.scan_batch = *scan_batch;
  frame.scan_attempts = *scan_attempts;
  frame.packet_ring_capacity = *packet_capacity;
  frame.session_ring_capacity = *session_capacity;
  return frame;
}

namespace {

util::Bytes encode_progress_shaped(MsgTag tag, std::uint32_t job_index,
                                   std::uint32_t epoch, std::uint64_t resolved,
                                   std::uint64_t sim_time) {
  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(tag));
  writer.u32(job_index);
  writer.u32(epoch);
  writer.u64(resolved);
  writer.u64(sim_time);
  return writer.take();
}

// Progress and heartbeat share one body shape behind different tags.
template <typename Frame>
std::optional<Frame> decode_progress_shaped(MsgTag tag,
                                            std::span<const std::uint8_t> body) {
  util::ByteReader reader(body);
  const auto got = reader.u8();
  if (!got || *got != static_cast<std::uint8_t>(tag)) return std::nullopt;
  Frame frame;
  const auto job_index = reader.u32();
  const auto epoch = reader.u32();
  const auto resolved = reader.u64();
  const auto sim_time = reader.u64();
  if (!sim_time.has_value() || !finished(reader)) return std::nullopt;
  frame.job_index = *job_index;
  frame.epoch = *epoch;
  frame.resolved = *resolved;
  frame.sim_time = *sim_time;
  return frame;
}

}  // namespace

util::Bytes encode_progress(const ProgressFrame& frame) {
  return encode_progress_shaped(MsgTag::kProgress, frame.job_index,
                                frame.epoch, frame.resolved, frame.sim_time);
}

std::optional<ProgressFrame> decode_progress(
    std::span<const std::uint8_t> body) {
  return decode_progress_shaped<ProgressFrame>(MsgTag::kProgress, body);
}

util::Bytes encode_heartbeat(const HeartbeatFrame& frame) {
  return encode_progress_shaped(MsgTag::kHeartbeat, frame.job_index,
                                frame.epoch, frame.resolved, frame.sim_time);
}

std::optional<HeartbeatFrame> decode_heartbeat(
    std::span<const std::uint8_t> body) {
  return decode_progress_shaped<HeartbeatFrame>(MsgTag::kHeartbeat, body);
}

util::Bytes encode_result(const ResultFrame& frame) {
  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(MsgTag::kResult));
  writer.u32(frame.job_index);
  writer.u32(frame.epoch);
  writer.u64(frame.shard.probes);
  writer.u64(frame.shard.responsive);
  writer.u64(frame.shard.refused);
  writer.u64(frame.shard.unresolved);
  writer.u64(frame.shard.retries);
  writer.u64(frame.shard.events);
  writer.u64(static_cast<std::uint64_t>(frame.shard.finished));
  writer.u32(static_cast<std::uint32_t>(frame.shard.records.size()));
  for (const scanner::ScanRecord& record : frame.shard.records) {
    writer.u32(record.host.value());
    writer.u16(record.port);
    writer.u8(static_cast<std::uint8_t>(record.protocol));
    writer.u64(static_cast<std::uint64_t>(record.when));
    writer.str16(record.banner);  // banners are protocol responses, < 64 KiB
  }
  writer.u64(frame.trace_recorded);
  writer.u64(frame.trace_dropped);
  writer.u32(static_cast<std::uint32_t>(frame.trace_events.size()));
  for (const obs::TraceEvent& event : frame.trace_events) {
    writer.u64(event.time);
    writer.u64(event.trace_id);
    writer.u64(event.seq);
    writer.u32(event.src);
    writer.u32(event.dst);
    writer.u16(event.port);
    writer.u16(event.shard);
    writer.u8(static_cast<std::uint8_t>(event.type));
    writer.u8(event.a);
    writer.u8(event.b);
  }
  writer.u32(static_cast<std::uint32_t>(frame.metrics.size()));
  for (const obs::MetricRow& row : frame.metrics) {
    writer.str8(std::string_view(row.name).substr(0, 0xff));
    writer.u8(static_cast<std::uint8_t>(row.kind));
    writer.u8(static_cast<std::uint8_t>(row.domain));
    if (row.kind == obs::Kind::kHistogram) {
      writer.u64(row.count);
      writer.u64(row.sum);
      // Sparse buckets: log2 histograms rarely populate more than a dozen.
      std::uint8_t populated = 0;
      for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
        if (row.buckets[b] != 0) ++populated;
      }
      writer.u8(populated);
      for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
        if (row.buckets[b] == 0) continue;
        writer.u8(static_cast<std::uint8_t>(b));
        writer.u64(row.buckets[b]);
      }
    } else {
      writer.u64(static_cast<std::uint64_t>(row.value));
    }
  }
  return writer.take();
}

std::optional<ResultFrame> decode_result(std::span<const std::uint8_t> body) {
  util::ByteReader reader(body);
  const auto tag = reader.u8();
  if (!tag || *tag != static_cast<std::uint8_t>(MsgTag::kResult)) {
    return std::nullopt;
  }
  ResultFrame frame;
  const auto job_index = reader.u32();
  const auto epoch = reader.u32();
  const auto probes = reader.u64();
  const auto responsive = reader.u64();
  const auto refused = reader.u64();
  const auto unresolved = reader.u64();
  const auto retries = reader.u64();
  const auto events = reader.u64();
  const auto finished_at = reader.u64();
  const auto record_count = reader.u32();
  if (!record_count) return std::nullopt;
  if (*record_count > reader.remaining() / kMinScanRecordBytes) {
    return std::nullopt;
  }
  frame.shard.records.reserve(*record_count);
  for (std::uint32_t i = 0; i < *record_count; ++i) {
    const auto host = reader.u32();
    const auto port = reader.u16();
    const auto protocol = reader.u8();
    const auto when = reader.u64();
    auto banner = reader.str16();
    if (!banner || !valid_protocol(*protocol)) return std::nullopt;
    scanner::ScanRecord record;
    record.host = util::Ipv4Addr(*host);
    record.port = *port;
    record.protocol = static_cast<proto::Protocol>(*protocol);
    record.when = static_cast<sim::Time>(*when);
    record.banner = std::move(*banner);
    frame.shard.records.push_back(std::move(record));
  }
  const auto trace_recorded = reader.u64();
  const auto trace_dropped = reader.u64();
  const auto trace_count = reader.u32();
  if (!trace_count) return std::nullopt;
  if (*trace_count > reader.remaining() / kTraceEventBytes) return std::nullopt;
  frame.trace_events.reserve(*trace_count);
  for (std::uint32_t i = 0; i < *trace_count; ++i) {
    obs::TraceEvent event;
    const auto time = reader.u64();
    const auto trace_id = reader.u64();
    const auto seq = reader.u64();
    const auto src = reader.u32();
    const auto dst = reader.u32();
    const auto port = reader.u16();
    const auto shard = reader.u16();
    const auto type = reader.u8();
    const auto a = reader.u8();
    const auto b = reader.u8();
    if (!b.has_value() || !valid_trace_type(*type)) return std::nullopt;
    event.time = *time;
    event.trace_id = *trace_id;
    event.seq = *seq;
    event.src = *src;
    event.dst = *dst;
    event.port = *port;
    event.shard = *shard;
    event.type = static_cast<obs::TraceEventType>(*type);
    event.a = *a;
    event.b = *b;
    frame.trace_events.push_back(event);
  }
  const auto metric_count = reader.u32();
  if (!metric_count) return std::nullopt;
  if (*metric_count > reader.remaining() / kMinMetricRowBytes) {
    return std::nullopt;
  }
  frame.metrics.reserve(*metric_count);
  for (std::uint32_t i = 0; i < *metric_count; ++i) {
    obs::MetricRow row;
    auto name = reader.str8();
    const auto kind = reader.u8();
    const auto domain = reader.u8();
    if (!domain.has_value()) return std::nullopt;
    if (*kind > static_cast<std::uint8_t>(obs::Kind::kHistogram) ||
        *domain > static_cast<std::uint8_t>(obs::Domain::kWall)) {
      return std::nullopt;
    }
    row.name = std::move(*name);
    row.kind = static_cast<obs::Kind>(*kind);
    row.domain = static_cast<obs::Domain>(*domain);
    if (row.kind == obs::Kind::kHistogram) {
      const auto count = reader.u64();
      const auto sum = reader.u64();
      const auto populated = reader.u8();
      if (!populated.has_value()) return std::nullopt;
      row.count = *count;
      row.sum = *sum;
      for (std::uint8_t b = 0; b < *populated; ++b) {
        const auto bucket = reader.u8();
        const auto value = reader.u64();
        if (!value.has_value() || *bucket >= obs::kHistogramBuckets) {
          return std::nullopt;
        }
        row.buckets[*bucket] = *value;
      }
    } else {
      const auto value = reader.u64();
      if (!value.has_value()) return std::nullopt;
      row.value = static_cast<std::int64_t>(*value);
    }
    frame.metrics.push_back(std::move(row));
  }
  if (!finished(reader)) return std::nullopt;
  frame.job_index = *job_index;
  frame.epoch = *epoch;
  frame.shard.probes = *probes;
  frame.shard.responsive = *responsive;
  frame.shard.refused = *refused;
  frame.shard.unresolved = *unresolved;
  frame.shard.retries = *retries;
  frame.shard.events = *events;
  frame.shard.finished = static_cast<sim::Time>(*finished_at);
  frame.trace_recorded = *trace_recorded;
  frame.trace_dropped = *trace_dropped;
  return frame;
}

util::Bytes encode_shutdown() {
  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(MsgTag::kShutdown));
  return writer.take();
}

util::Bytes encode_shutdown_ack() {
  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(MsgTag::kShutdown) |
            net::kWireResponseBit);
  return writer.take();
}

}  // namespace ofh::dist
