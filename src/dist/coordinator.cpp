#include "dist/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include "core/study.h"
#include "dist/protocol.h"
#include "dist/worker.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ofh::dist {
namespace {

constexpr std::size_t kReadChunk = 65536;
constexpr int kPollTickMs = 50;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Semantic validation past the codec layer: a well-formed result is only
// applicable if its trace events belong to the job's shard — absorbing a
// hostile shard id would corrupt another sweep's flight recorder.
bool result_payload_valid(const ResultFrame& frame, std::size_t job_count) {
  if (frame.job_index >= job_count) return false;
  const auto shard = static_cast<std::uint16_t>(frame.job_index + 1);
  for (const obs::TraceEvent& event : frame.trace_events) {
    if (event.shard != shard) return false;
  }
  return true;
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {}

Coordinator::~Coordinator() { shutdown(); }

bool Coordinator::start() {
  if (!options_.listen_path.empty()) {
    sockaddr_un addr{};
    if (options_.listen_path.size() >= sizeof(addr.sun_path)) {
      error_ = "listen path exceeds sun_path";
      return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      error_ = "socket() failed";
      return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.listen_path.c_str(),
                options_.listen_path.size() + 1);
    ::unlink(options_.listen_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      error_ = "bind/listen failed on " + options_.listen_path;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    set_nonblocking(listen_fd_);
  }
  for (unsigned i = 0; i < options_.fork_workers; ++i) {
    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      error_ = "socketpair() failed";
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      error_ = "fork() failed";
      return false;
    }
    if (pid == 0) {
      // Child: drop every coordinator-side descriptor, serve the pair
      // end, and never return through the caller's stack.
      ::close(sv[0]);
      if (listen_fd_ >= 0) ::close(listen_fd_);
      for (const WorkerConn& other : workers_) {
        if (other.fd >= 0) ::close(other.fd);
      }
      const int code = serve_worker_fd(sv[1], "fork-" + std::to_string(i));
      ::_exit(code);
    }
    ::close(sv[1]);
    set_nonblocking(sv[0]);
    WorkerConn conn;
    conn.fd = sv[0];
    conn.pid = static_cast<int>(pid);
    conn.forked = true;
    conn.name = "fork-" + std::to_string(i);
    conn.last_activity = Clock::now();
    workers_.push_back(std::move(conn));
  }
  return true;
}

void Coordinator::adopt_worker_fd(int fd, int pid) {
  set_nonblocking(fd);
  WorkerConn conn;
  conn.fd = fd;
  conn.pid = pid;
  conn.name = "adopted-" + std::to_string(fd);
  conn.last_activity = Clock::now();
  workers_.push_back(std::move(conn));
}

std::size_t Coordinator::live_workers() const {
  std::size_t live = 0;
  for (const WorkerConn& worker : workers_) {
    if (!worker.dead && !worker.quarantined && worker.fd >= 0) ++live;
  }
  return live;
}

std::vector<core::ScanShardResult> Coordinator::run(
    const core::StudyConfig& config,
    const std::vector<core::ScanShardJob>& jobs,
    const core::ScanShardProgressSink& sink) {
  RunState run;
  run.config = &config;
  run.jobs = &jobs;
  run.sink = &sink;
  run.results.resize(jobs.size());
  run.states.resize(jobs.size());
  run.pending = jobs.size();
  const Clock::time_point begun = Clock::now();
  for (JobState& state : run.states) state.ready_at = begun;
  // Only wait for a fleet that can actually appear: a coordinator with no
  // listener and no forked workers degrades to inline immediately.
  const bool expect_workers = listen_fd_ >= 0 || !workers_.empty();
  const Clock::time_point grace_deadline =
      begun + std::chrono::milliseconds(expect_workers ? options_.wait_timeout_ms
                                                       : 0);

  while (run.pending > 0) {
    reap_children();
    const Clock::time_point now = Clock::now();
    for (WorkerConn& worker : workers_) {
      if (worker.dead || worker.quarantined || worker.job < 0) continue;
      if (now - worker.last_activity >
          std::chrono::milliseconds(options_.job_timeout_ms)) {
        // Presumed wedged: requeue the job but keep the socket readable —
        // a late result from this attempt is still a valid (then
        // duplicate-dropped) frame, not a protocol violation.
        fail_assignment(worker, run, "timeout");
        quarantine(worker, /*close_fd=*/false);
      }
    }
    assign_jobs(run);
    run_inline_if_stuck(run, grace_deadline);
    if (run.pending == 0) break;

    std::vector<pollfd> fds;
    std::vector<std::size_t> owner;  // index into workers_, SIZE_MAX=listener
    fds.reserve(workers_.size() + 1);
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      owner.push_back(static_cast<std::size_t>(-1));
    }
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const WorkerConn& worker = workers_[i];
      if (worker.fd < 0) continue;
      short events = POLLIN;
      if (!worker.out.empty()) events |= POLLOUT;
      fds.push_back({worker.fd, events, 0});
      owner.push_back(i);
    }
    if (fds.empty()) continue;  // inline fallback will drain the batch
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), kPollTickMs);
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (owner[i] == static_cast<std::size_t>(-1)) {
        accept_ready();
        continue;
      }
      WorkerConn& worker = workers_[owner[i]];
      if (worker.fd < 0) continue;
      if ((fds[i].revents & POLLOUT) != 0) flush_worker(worker, run);
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        read_worker(worker, run);
      }
    }
  }
  return std::move(run.results);
}

void Coordinator::accept_ready() {
  while (listen_fd_ >= 0) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    adopt_worker_fd(fd, -1);
  }
}

void Coordinator::read_worker(WorkerConn& worker, RunState& run) {
  bool saw_eof = false;
  while (true) {
    std::uint8_t chunk[kReadChunk];
    const ssize_t n = ::recv(worker.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      worker.in.insert(worker.in.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) < sizeof chunk) break;
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    saw_eof = true;  // hard socket error: same handling as a crash
    break;
  }
  // Parse buffered frames first: a worker that sent its result and was
  // then killed still delivered that result.
  while (worker.fd >= 0) {
    const net::FrameView frame = net::peek_frame(worker.in, kMaxResultBody);
    if (frame.status == net::FrameStatus::kNeedMore) break;
    if (frame.status == net::FrameStatus::kOversized) {
      fail_assignment(worker, run, "oversized-frame");
      quarantine(worker, /*close_fd=*/true);
      break;
    }
    const bool keep = handle_frame(worker, frame.body, run);
    if (worker.fd < 0) break;  // handle_frame may close on hostile input
    net::consume_frame(worker.in, frame.body.size());
    if (!keep) break;
  }
  if (saw_eof && worker.fd >= 0) {
    worker.dead = true;
    fail_assignment(worker, run, "worker-eof");
    ::close(worker.fd);
    worker.fd = -1;
  }
}

void Coordinator::flush_worker(WorkerConn& worker, RunState& run) {
  while (!worker.out.empty() && worker.fd >= 0) {
    const ssize_t n = ::send(worker.fd, worker.out.data(), worker.out.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      worker.out.erase(worker.out.begin(), worker.out.begin() + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    fail_assignment(worker, run, "worker-send-failed");
    quarantine(worker, /*close_fd=*/true);
    break;
  }
}

bool Coordinator::handle_frame(WorkerConn& worker,
                               std::span<const std::uint8_t> body,
                               RunState& run) {
  worker.last_activity = Clock::now();
  const std::uint8_t tag = body.empty() ? 0 : body[0];
  if (tag == static_cast<std::uint8_t>(MsgTag::kHello)) {
    const auto hello = decode_hello(body);
    if (!hello || hello->version != kDistProtocolVersion) {
      fail_assignment(worker, run, "bad-hello");
      quarantine(worker, /*close_fd=*/true);
      return false;
    }
    worker.hello = true;
    if (!hello->name.empty()) worker.name = hello->name;
    if (worker.pid < 0 && hello->pid > 0) {
      worker.pid = static_cast<int>(hello->pid);
    }
    return true;
  }
  if (tag == (static_cast<std::uint8_t>(MsgTag::kShutdown) |
              net::kWireResponseBit)) {
    return true;  // orderly shutdown ack
  }
  if (tag == static_cast<std::uint8_t>(MsgTag::kProgress)) {
    const auto progress = decode_progress(body);
    if (!progress) {
      fail_assignment(worker, run, "malformed-progress");
      quarantine(worker, /*close_fd=*/true);
      return false;
    }
    if (progress->job_index < run.states.size()) {
      core::ScanShardProgress stride;
      stride.kind = core::ScanShardProgressKind::kStride;
      stride.resolved = progress->resolved;
      stride.sim_time = static_cast<sim::Time>(progress->sim_time);
      deliver_progress(run, progress->job_index, stride);
    }
    if (options_.kill_worker_after_progress && !run.drill_fired &&
        worker.pid > 0) {
      run.drill_fired = true;
      ::kill(worker.pid, SIGKILL);  // crash drill; EOF does the rest
    }
    return true;
  }
  if (tag == static_cast<std::uint8_t>(MsgTag::kHeartbeat)) {
    const auto beat = decode_heartbeat(body);
    if (!beat) {
      fail_assignment(worker, run, "malformed-heartbeat");
      quarantine(worker, /*close_fd=*/true);
      return false;
    }
    if (beat->job_index < run.states.size() && run.sink != nullptr &&
        *run.sink) {
      // Liveness doubles as the live sweep counter; kSample never becomes
      // a published (deterministic) progress event.
      core::ScanShardProgress sample;
      sample.kind = core::ScanShardProgressKind::kSample;
      sample.resolved = beat->resolved;
      sample.sim_time = static_cast<sim::Time>(beat->sim_time);
      (*run.sink)(beat->job_index, sample);
    }
    return true;
  }
  if (tag == static_cast<std::uint8_t>(MsgTag::kResult)) {
    auto result = decode_result(body);
    if (!result || !result_payload_valid(*result, run.states.size())) {
      fail_assignment(worker, run, "malformed-result");
      quarantine(worker, /*close_fd=*/true);
      return false;
    }
    if (worker.job == static_cast<int>(result->job_index)) {
      worker.job = -1;
      run.states[result->job_index].assigned = false;
    }
    apply_result(run, std::move(*result));
    return true;
  }
  // A wire error envelope (the worker rejected a frame we sent) or an
  // unknown tag: either way this connection cannot be trusted with jobs.
  fail_assignment(worker, run,
                  net::parse_wire_error(body) ? "worker-error" : "unknown-tag");
  quarantine(worker, /*close_fd=*/true);
  return false;
}

void Coordinator::deliver_progress(RunState& run, std::uint32_t index,
                                   const core::ScanShardProgress& progress) {
  if (index >= run.states.size()) return;
  if (progress.kind == core::ScanShardProgressKind::kStride) {
    // Stride crossings are a pure function of the shard's event stream, so
    // two attempts at the same job emit identical sequences: publishing
    // each stride index once makes the merged sequence byte-identical to a
    // crash-free run.
    const std::uint64_t stride = progress.resolved / core::kSweepProgressStride;
    JobState& state = run.states[index];
    if (stride <= state.max_stride) return;
    state.max_stride = stride;
  }
  if (run.sink != nullptr && *run.sink) (*run.sink)(index, progress);
}

void Coordinator::apply_result(RunState& run, ResultFrame&& frame) {
  JobState& state = run.states[frame.job_index];
  if (state.applied) {
    // Idempotent application: results are pure functions of (config, job),
    // so a duplicate carries identical bytes — dropping it is lossless.
    ++duplicates_dropped_;
    return;
  }
  state.applied = true;
  state.assigned = false;
  --run.pending;
  obs::TraceRegistry::global().absorb(
      static_cast<std::uint16_t>(frame.job_index + 1), frame.trace_events,
      frame.trace_recorded, frame.trace_dropped);
  obs::Registry::global().absorb(frame.metrics);
  // Synthesize the kDone the worker suppressed — exactly once per job, with
  // the exact payload run_scan_shard emits (final resolved count, shard
  // clock at resolution).
  core::ScanShardProgress done;
  done.kind = core::ScanShardProgressKind::kDone;
  done.resolved =
      frame.shard.responsive + frame.shard.refused + frame.shard.unresolved;
  done.sim_time = frame.shard.finished;
  deliver_progress(run, frame.job_index, done);
  run.results[frame.job_index] = std::move(frame.shard);
}

void Coordinator::fail_assignment(WorkerConn& worker, RunState& run,
                                  const std::string& reason) {
  if (worker.job < 0) return;
  const auto index = static_cast<std::size_t>(worker.job);
  worker.job = -1;
  worker.out.clear();  // never deliver a half-written frame
  if (index >= run.states.size()) return;
  RetryLedgerEntry entry;
  entry.job_index = static_cast<std::uint32_t>(index);
  entry.epoch = worker.epoch;
  entry.worker = worker.name;
  entry.reason = reason;
  retry_ledger_.push_back(std::move(entry));
  JobState& state = run.states[index];
  if (!state.applied) {
    state.assigned = false;
    const unsigned shift = std::min(state.attempts, 6u);
    state.ready_at = Clock::now() + std::chrono::milliseconds(
                                        options_.backoff_base_ms << shift);
  }
}

void Coordinator::quarantine(WorkerConn& worker, bool close_fd) {
  worker.quarantined = true;
  if (close_fd && worker.fd >= 0) {
    worker.dead = true;
    ::close(worker.fd);
    worker.fd = -1;
  }
}

void Coordinator::assign_jobs(RunState& run) {
  const Clock::time_point now = Clock::now();
  for (WorkerConn& worker : workers_) {
    if (worker.dead || worker.quarantined || !worker.hello ||
        worker.fd < 0 || worker.job >= 0) {
      continue;
    }
    int pick = -1;
    for (std::size_t i = 0; i < run.states.size(); ++i) {
      const JobState& state = run.states[i];
      if (state.applied || state.assigned) continue;
      if (state.attempts >= options_.max_attempts) continue;
      if (state.ready_at > now) continue;
      pick = static_cast<int>(i);
      break;
    }
    if (pick < 0) return;
    JobState& state = run.states[pick];
    JobFrame frame;
    frame.epoch = state.next_epoch++;
    frame.job = (*run.jobs)[static_cast<std::size_t>(pick)];
    frame.seed = run.config->seed;
    frame.population_scale = run.config->population_scale;
    frame.scan_batch = run.config->scan_batch;
    frame.scan_attempts = run.config->scan_attempts;
    frame.fault_schedule = run.config->fault_schedule;
    // Ship the coordinator's live ring capacities so the worker's flight
    // recorder evicts exactly as an in-process shard would have.
    frame.packet_ring_capacity = obs::TraceRegistry::global().packet_capacity();
    frame.session_ring_capacity =
        obs::TraceRegistry::global().session_capacity();
    const util::Bytes framed = net::wire_frame(encode_job(frame));
    worker.out.insert(worker.out.end(), framed.begin(), framed.end());
    worker.job = pick;
    worker.epoch = frame.epoch;
    worker.last_activity = now;
    state.assigned = true;
    ++state.attempts;
    flush_worker(worker, run);
  }
}

void Coordinator::run_inline_if_stuck(RunState& run,
                                      Clock::time_point grace_deadline) {
  const Clock::time_point now = Clock::now();
  bool fleet_alive = false;
  for (const WorkerConn& worker : workers_) {
    if (!worker.dead && !worker.quarantined && worker.fd >= 0) {
      fleet_alive = true;
      break;
    }
  }
  for (std::size_t i = 0; i < run.states.size(); ++i) {
    JobState& state = run.states[i];
    if (state.applied || state.assigned) continue;
    const bool exhausted = state.attempts >= options_.max_attempts;
    if (!exhausted) {
      if (fleet_alive) continue;         // a worker can still take it
      if (now < grace_deadline) continue;  // the fleet may still appear
    }
    // Graceful degradation: run the shard on this thread, with the same
    // progress dedup the remote path uses — byte-identical either way.
    ++inline_runs_;
    const core::ScanShardJob& spec = (*run.jobs)[i];
    core::ScanShardResult result = core::run_scan_shard(
        *run.config, spec, [&](const core::ScanShardProgress& progress) {
          if (progress.kind == core::ScanShardProgressKind::kDone) return;
          deliver_progress(run, spec.index, progress);
        });
    state.applied = true;
    --run.pending;
    core::ScanShardProgress done;
    done.kind = core::ScanShardProgressKind::kDone;
    done.resolved = result.responsive + result.refused + result.unresolved;
    done.sim_time = result.finished;
    deliver_progress(run, spec.index, done);
    run.results[i] = std::move(result);
  }
}

void Coordinator::reap_children() {
  for (WorkerConn& worker : workers_) {
    if (!worker.forked || worker.pid <= 0) continue;
    int status = 0;
    if (::waitpid(worker.pid, &status, WNOHANG) == worker.pid) {
      worker.forked = false;  // reaped; shutdown() must not wait again
    }
  }
}

void Coordinator::shutdown() {
  for (WorkerConn& worker : workers_) {
    if (worker.fd >= 0 && !worker.dead) {
      if (worker.quarantined && worker.forked && worker.pid > 0) {
        // A wedged child will never answer SHUTDOWN or notice EOF.
        ::kill(worker.pid, SIGKILL);
      } else {
        const util::Bytes framed = net::wire_frame(encode_shutdown());
        ::send(worker.fd, framed.data(), framed.size(), MSG_NOSIGNAL);
      }
    }
    if (worker.fd >= 0) {
      ::close(worker.fd);
      worker.fd = -1;
    }
    worker.dead = true;
  }
  for (WorkerConn& worker : workers_) {
    if (worker.forked && worker.pid > 0) {
      int status = 0;
      ::waitpid(worker.pid, &status, 0);  // children exit on EOF
      worker.forked = false;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.listen_path.empty()) {
    ::unlink(options_.listen_path.c_str());
  }
}

}  // namespace ofh::dist
