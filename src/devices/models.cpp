#include "devices/models.h"

namespace ofh::devices {

const std::vector<DeviceModel>& device_models() {
  using P = proto::Protocol;
  static const std::vector<DeviceModel> kModels = {
      // Cameras.
      {"HiKVision Camera", "Camera", P::kTelnet, "192.168.0.64 login:"},
      {"Polycom HDX", "Camera", P::kTelnet, "Welcome to ViewStation"},
      {"D-Link DCS-6620", "Camera", P::kTelnet, "Welcome to DCS-6620"},
      {"D-Link DCS-5220", "Camera", P::kTelnet, "Network-Camera login:"},
      {"Avtech AVN801", "Camera", P::kUpnp,
       "Server: Linux/2.x UPnP/1.0 Avtech/1.0"},
      {"Panasonic BB-HCM581", "Camera", P::kUpnp,
       "Friendly Name: Network Camera BB-HCM581"},
      {"Anbash NC336FG", "Camera", P::kUpnp, "Model Name: NC336FG"},
      {"Beward N100", "Camera", P::kUpnp,
       "Friendly Name: N100 H.264 IP Camera"},
      {"Io Data TS-WLC2", "Camera", P::kUpnp, "Model Name: TS-WLC2"},
      {"Io Data TS-WPTCAM", "Camera", P::kUpnp, "Model Name: TS-WPTCAM"},
      {"Io Data TS-WLCAM", "Camera", P::kUpnp, "Model Name: TS-WLCAM"},
      {"Io Data TS-WLCE", "Camera", P::kUpnp, "Model Name: TS-WLCE"},
      {"G-Cam EFD-4430", "Camera", P::kUpnp, "Friendly Name: G-Cam/EFD-4430"},
      {"Seyeon Tech FW7511-TVM", "Camera", P::kUpnp,
       "Model Name: FW7511-TVM"},
      // DSL modems.
      {"ZyXEL PK5001Z", "DSL Modem", P::kTelnet, "PK5001Z login"},
      {"ZTE ZXHN H108N", "DSL Modem", P::kTelnet,
       "Welcome to the world of CLI"},
      {"Technicolor modem", "DSL Modem", P::kTelnet, "TG234 login:"},
      {"ZTE ZXV10", "DSL Modem", P::kTelnet, "F670L Login"},
      {"Datacom DM991", "DSL Modem", P::kTelnet,
       "DM991CR - G.SHDSL Modem Router"},
      {"TP-Link TD-W8960N", "DSL Modem", P::kTelnet,
       "TD-W8960N 6.0 DSL Modem"},
      {"Cisco C11-4P", "DSL Modem", P::kTelnet, "MODEM : C111-4P"},
      {"TP-Link TD-W8968", "DSL Modem", P::kTelnet,
       "TD-W8968 4.0 DSL Modem Router"},
      // Routers.
      {"BelAir 100N", "Router", P::kTelnet,
       "BelAir100N - BelAir Backhaul and Access Wireless Router"},
      {"Tenda Wireless Router", "Router", P::kUpnp, "Manufacturer: Tenda"},
      {"Totolink N150", "Router", P::kUpnp, "Friendly Name: TOTOLINK N150RA"},
      {"ZTE H108N", "Router", P::kUpnp, "Model Name: H108N"},
      {"OBSERVA BHS_RTA 1.0.0", "Router", P::kUpnp, "Model Name: BHS_RTA"},
      {"DASAN H660GM", "Router", P::kUpnp, "Model Name: H660GM"},
      {"Huawei HG532e", "Router", P::kUpnp, "Model Name: HG532e"},
      {"ASUSTeK RT-AC53", "Router", P::kUpnp, "Friendly Name: RT-AC53"},
      {"NDM", "Router", P::kCoap, "/ndm/login"},
      {"QLink", "Router", P::kCoap, "Qlink-ACK Resource"},
      // Smart home.
      {"Signify Philips hue bridge", "Smart Home", P::kUpnp,
       "Model Name: Philips hue bridge 2015"},
      {"EQ3 HomeMatic", "Smart Home", P::kUpnp,
       "Model Name: HomeMatic Central"},
      {"Hyperion 2.0.0", "Smart Home", P::kUpnp,
       "Model Description: Hyperion Open Source Ambient Light"},
      {"Home Assistant", "Smart Home", P::kTelnet,
       "Home Assistant: Installation Type: Home Assistant OS"},
      {"Home Assistant MQTT", "Smart Home", P::kMqtt, "homeassistant/light/"},
      // TV receivers.
      {"Emby", "TV Receiver", P::kUpnp, "Friendly Name: Emby - DS720plus"},
      {"Dedicated Micros Digital Sprite 2", "TV Receiver", P::kTelnet,
       "Welcome to the DS2 command line processor"},
      {"Roku", "TV Receiver", P::kUpnp, "Server: Roku UPnP/1.0 MiniUPnPd/1.4"},
      // Other device classes.
      {"Realtek RTL8671", "Access Point", P::kUpnp, "Model Name: RTL8671"},
      {"Synology DS918+", "NAS", P::kUpnp,
       "Friendly Name: DiskStation (DS918+)"},
      {"Sonos ZP100", "Smart Speaker", P::kUpnp, "Model Number: ZP120"},
      {"Octoprint", "3D Printer", P::kMqtt, "octoPrint/temperature/bed"},
      {"Gozmart", "HVAC", P::kMqtt, "gozmart/sonoff/"},
      {"Advantech", "HVAC", P::kMqtt, "Advantech/"},
      {"Emerson", "Remote Display Unit", P::kTelnet,
       "Emerson Network Power Co., Ltd."},
      {"Trimble SPS855", "Remote Display Unit", P::kUpnp,
       "Friendly Name: SPS855, 6013R31531: Trimble"},
  };
  return kModels;
}

std::vector<const DeviceModel*> models_for(proto::Protocol protocol) {
  std::vector<const DeviceModel*> out;
  for (const auto& model : device_models()) {
    if (model.protocol == protocol) out.push_back(&model);
  }
  return out;
}

const std::vector<TypeShare>& type_shares(proto::Protocol protocol) {
  using P = proto::Protocol;
  // Approximate Figure 2 mix. XMPP/AMQP responses were "not sufficient to
  // label the target as an IoT device" (paper §4.1.2), hence Unidentified.
  static const std::vector<TypeShare> kTelnet = {
      {"Camera", 0.28},      {"DSL Modem", 0.24}, {"Router", 0.18},
      {"Smart Home", 0.05},  {"TV Receiver", 0.04},
      {"Remote Display Unit", 0.02}, {"Unidentified", 0.19},
  };
  static const std::vector<TypeShare> kUpnp = {
      {"Router", 0.38},       {"Camera", 0.27},   {"Smart Home", 0.09},
      {"TV Receiver", 0.07},  {"NAS", 0.05},      {"Smart Speaker", 0.04},
      {"Access Point", 0.03}, {"Remote Display Unit", 0.01},
      {"Unidentified", 0.06},
  };
  static const std::vector<TypeShare> kMqtt = {
      {"Smart Home", 0.34}, {"HVAC", 0.18}, {"3D Printer", 0.09},
      {"Unidentified", 0.39},
  };
  static const std::vector<TypeShare> kCoap = {
      {"Router", 0.61},
      {"Unidentified", 0.39},
  };
  static const std::vector<TypeShare> kUnidentified = {
      {"Unidentified", 1.0},
  };
  switch (protocol) {
    case P::kTelnet: return kTelnet;
    case P::kUpnp: return kUpnp;
    case P::kMqtt: return kMqtt;
    case P::kCoap: return kCoap;
    default: return kUnidentified;
  }
}

}  // namespace ofh::devices
