#include "devices/population.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "devices/paper_stats.h"

namespace ofh::devices {

namespace {

// Base /8s used for allocation; skips reserved/special-use ranges and 44/8,
// which the study reserves as the network-telescope darknet.
const std::vector<std::uint8_t>& usable_slash8() {
  static const std::vector<std::uint8_t> kBases = [] {
    std::vector<std::uint8_t> bases;
    for (int base = 11; base < 224; ++base) {
      if (base == 44 || base == 127 || base == 169 || base == 172 ||
          base == 192 || base == 198 || base == 203) {
        continue;
      }
      bases.push_back(static_cast<std::uint8_t>(base));
    }
    return bases;
  }();
  return kBases;
}

// Largest-remainder apportionment of total across weights; guarantees that
// every strictly-positive weight receives at least one unit when total
// allows, keeping rare categories (e.g. Kako honeypots) represented at
// small scales.
std::vector<std::uint64_t> apportion(std::uint64_t total,
                                     const std::vector<double>& weights) {
  const double weight_sum =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<std::uint64_t> counts(weights.size(), 0);
  if (weight_sum <= 0 || total == 0) return counts;

  std::vector<std::pair<double, std::size_t>> remainders;
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact = total * weights[i] / weight_sum;
    counts[i] = static_cast<std::uint64_t>(exact);
    assigned += counts[i];
    remainders.push_back({exact - static_cast<double>(counts[i]), i});
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < total && i < remainders.size(); ++i) {
    ++counts[remainders[i].second];
    ++assigned;
  }
  return counts;
}

}  // namespace

Population::Population(PopulationSpec spec) : spec_(spec) {}
Population::~Population() { detach_all(); }

std::uint64_t Population::scaled(std::uint64_t paper_count) const {
  if (paper_count == 0) return 0;
  const auto scaled_count = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(paper_count) * spec_.scale));
  return std::max<std::uint64_t>(scaled_count, 1);
}

void Population::allocate_prefixes(std::uint64_t device_total) {
  // Enough /20s (4,096 addresses each) to hold device_total at the
  // configured density, distributed over countries by the Table 10 shares.
  // /20 granularity keeps the scan's sweep space proportional to the
  // population instead of paying 64k addresses per prefix at small scales.
  constexpr std::uint64_t kPrefixSize = 4'096;
  const auto needed_prefixes = static_cast<std::size_t>(
      device_total / (static_cast<double>(kPrefixSize) * spec_.density) + 1.5);

  std::vector<double> country_weights;
  for (const auto& row : paper::table10()) {
    country_weights.push_back(static_cast<double>(row.devices));
  }
  const auto per_country = apportion(
      std::max<std::uint64_t>(needed_prefixes, country_weights.size()),
      country_weights);

  const auto& bases = usable_slash8();
  std::size_t base_index = 0;
  std::uint32_t slot = 0;  // /20 slot within the /8: 4096 slots
  for (std::size_t c = 0; c < per_country.size(); ++c) {
    for (std::uint64_t i = 0; i < per_country[c]; ++i) {
      const std::uint32_t base_value =
          (std::uint32_t{bases[base_index]} << 24) | (slot << 12);
      prefixes_.push_back(util::Cidr(util::Ipv4Addr(base_value), 20));
      prefix_country_.emplace_back(paper::table10()[c].country);
      slot += 293;  // prime stride decorrelates prefixes from countries
      if (slot >= 4'096) {
        slot %= 4'096;
        base_index = (base_index + 1) % bases.size();
      }
    }
  }
}

util::Ipv4Addr Population::next_address(util::Rng& rng) {
  // Geometric gaps give the prefix the configured host density.
  const double density = std::clamp(spec_.density, 0.01, 1.0);
  std::uint64_t gap = 1;
  while (rng.uniform() > density && gap < 32) ++gap;
  cursor_offset_ += gap;
  if (cursor_offset_ >= prefixes_[cursor_prefix_].size() - 1) {
    cursor_offset_ = 1;
    cursor_prefix_ = (cursor_prefix_ + 1) % prefixes_.size();
  }
  return util::Ipv4Addr(prefixes_[cursor_prefix_].base().value() +
                        static_cast<std::uint32_t>(cursor_offset_));
}

void Population::build() {
  util::Rng rng = util::Rng(spec_.seed).fork("population");

  // Scaled per-protocol totals (Table 4, ZMap column).
  struct ProtocolPlan {
    proto::Protocol protocol;
    std::uint64_t exposed;
    std::vector<std::pair<Misconfig, std::uint64_t>> misconfigs;
  };
  std::vector<ProtocolPlan> plans;
  std::uint64_t device_total = 0;
  for (const auto& row : paper::table4()) {
    ProtocolPlan plan;
    plan.protocol = row.protocol;
    plan.exposed = scaled(row.zmap);
    device_total += plan.exposed;
    plans.push_back(plan);
  }

  // Fold Table 5 misconfiguration counts into the plans.
  const auto misconfig_of = [](const paper::MisconfigRow& row) {
    using P = proto::Protocol;
    if (row.protocol == P::kTelnet) {
      return row.vulnerability == "No auth, root access"
                 ? Misconfig::kTelnetNoAuthRoot
                 : Misconfig::kTelnetNoAuth;
    }
    if (row.protocol == P::kMqtt) return Misconfig::kMqttNoAuth;
    if (row.protocol == P::kAmqp) return Misconfig::kAmqpNoAuth;
    if (row.protocol == P::kXmpp) {
      return row.vulnerability == "Anonymous login" ? Misconfig::kXmppAnonymous
                                                    : Misconfig::kXmppPlaintext;
    }
    if (row.protocol == P::kCoap) {
      if (row.vulnerability == "No auth, admin access") {
        return Misconfig::kCoapAdminAccess;
      }
      if (row.vulnerability == "No auth") return Misconfig::kCoapNoAuth;
      return Misconfig::kCoapReflector;
    }
    return Misconfig::kUpnpReflector;
  };
  for (const auto& row : paper::table5()) {
    for (auto& plan : plans) {
      if (plan.protocol == row.protocol) {
        plan.misconfigs.push_back({misconfig_of(row), scaled(row.devices)});
      }
    }
  }

  allocate_prefixes(device_total);

  // Country assignment follows the prefix the address lands in, so the
  // country distribution is inherited from the prefix allocation.
  devices_.reserve(device_total);
  for (const auto& plan : plans) {
    // Per-device-type model pools for this protocol.
    const auto shares = type_shares(plan.protocol);
    std::vector<double> weights;
    for (const auto& share : shares) weights.push_back(share.share);
    const auto models = models_for(plan.protocol);

    std::uint64_t misconfig_budget = 0;
    for (const auto& [kind, count] : plan.misconfigs) misconfig_budget += count;

    std::uint64_t misconfig_index = 0;    // which misconfig bucket
    std::uint64_t misconfig_emitted = 0;  // within the bucket

    for (std::uint64_t i = 0; i < plan.exposed; ++i) {
      DeviceSpec spec;
      spec.address = next_address(rng);
      spec.primary = plan.protocol;

      // The first `misconfig_budget` devices of each protocol receive the
      // misconfigurations; addresses are already decorrelated from order.
      if (i < misconfig_budget) {
        while (misconfig_index < plan.misconfigs.size() &&
               misconfig_emitted >= plan.misconfigs[misconfig_index].second) {
          misconfig_emitted = 0;
          ++misconfig_index;
        }
        if (misconfig_index < plan.misconfigs.size()) {
          spec.misconfig = plan.misconfigs[misconfig_index].first;
          ++misconfig_emitted;
        }
      } else {
        spec.weak_credentials = rng.chance(spec_.weak_credential_share);
      }

      // Device type / model.
      const std::size_t type_index = rng.weighted(weights);
      spec.device_type = type_index < shares.size()
                             ? std::string(shares[type_index].device_type)
                             : "Unidentified";
      if (spec.device_type != "Unidentified") {
        std::vector<const DeviceModel*> pool;
        for (const auto* model : models) {
          if (model->device_type == spec.device_type) pool.push_back(model);
        }
        if (!pool.empty()) spec.model = pool[rng.below(pool.size())];
      }

      // Country from the covering prefix.
      for (std::size_t p = 0; p < prefixes_.size(); ++p) {
        if (prefixes_[p].contains(spec.address)) {
          spec.country = prefix_country_[p];
          spec.asn = static_cast<std::uint32_t>(64'000 + p);
          break;
        }
      }

      if (spec.misconfig != Misconfig::kNone) {
        spec.infected = rng.chance(spec_.infected_share);
      }

      devices_.push_back(std::make_unique<Device>(std::move(spec)));
    }
  }
}

void Population::attach_all(net::Fabric& fabric) {
  fabric_ = &fabric;
  for (auto& device : devices_) device->attach(fabric);
}

void Population::detach_all() {
  if (fabric_ == nullptr) return;
  for (auto& device : devices_) {
    if (device->attached()) device->detach();
  }
  fabric_ = nullptr;
}

util::Ipv4Addr Population::allocate_extra() {
  util::Rng rng = util::Rng(spec_.seed).fork("extras");
  // Walk forward from the cursor; skip occupied addresses.
  for (;;) {
    const util::Ipv4Addr addr = next_address(rng);
    bool taken = false;
    if (fabric_ != nullptr && fabric_->host_at(addr) != nullptr) taken = true;
    for (const auto& device : devices_) {
      if (device->address() == addr) {
        taken = true;
        break;
      }
    }
    if (!taken) return addr;
  }
}

std::uint64_t Population::misconfigured_count() const {
  std::uint64_t count = 0;
  for (const auto& device : devices_) {
    if (device->misconfigured()) ++count;
  }
  return count;
}

std::uint64_t Population::infected_count() const {
  std::uint64_t count = 0;
  for (const auto& device : devices_) {
    if (device->spec().infected) ++count;
  }
  return count;
}

std::uint64_t Population::count_for(proto::Protocol protocol) const {
  std::uint64_t count = 0;
  for (const auto& device : devices_) {
    if (device->spec().primary == protocol) ++count;
  }
  return count;
}

}  // namespace ofh::devices
