#include "devices/population.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "devices/paper_stats.h"

namespace ofh::devices {

// Base /8s used for allocation; skips reserved/special-use ranges and 44/8,
// which the study reserves as the network-telescope darknet. Public so
// StudyConfig::validate can reject a telescope range that would collide
// with populated space (core/study.cpp).
const std::vector<std::uint8_t>& usable_slash8() {
  static const std::vector<std::uint8_t> kBases = [] {
    std::vector<std::uint8_t> bases;
    for (int base = 11; base < 224; ++base) {
      if (base == 44 || base == 127 || base == 169 || base == 172 ||
          base == 192 || base == 198 || base == 203) {
        continue;
      }
      bases.push_back(static_cast<std::uint8_t>(base));
    }
    return bases;
  }();
  return kBases;
}

namespace {

// Largest-remainder apportionment of total across weights; guarantees that
// every strictly-positive weight receives at least one unit when total
// allows, keeping rare categories (e.g. Kako honeypots) represented at
// small scales.
std::vector<std::uint64_t> apportion(std::uint64_t total,
                                     const std::vector<double>& weights) {
  const double weight_sum =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<std::uint64_t> counts(weights.size(), 0);
  if (weight_sum <= 0 || total == 0) return counts;

  std::vector<std::pair<double, std::size_t>> remainders;
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact = total * weights[i] / weight_sum;
    counts[i] = static_cast<std::uint64_t>(exact);
    assigned += counts[i];
    remainders.push_back({exact - static_cast<double>(counts[i]), i});
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < total && i < remainders.size(); ++i) {
    ++counts[remainders[i].second];
    ++assigned;
  }
  return counts;
}

// Predicted TCP listener set per primary protocol. Must mirror exactly what
// Device::on_attached wires up (devices/device.cpp): the lazy-host verdict
// for a SYN is "this port would accept" vs "this port would RST", and a
// wrong prediction changes scan results. tests/population_test.cpp
// cross-checks against real materialized stacks.
bool predicted_tcp_listener(proto::Protocol protocol, std::uint32_t addr,
                            std::uint16_t port) {
  using P = proto::Protocol;
  switch (protocol) {
    case P::kTelnet:
      // Some devices listen on 2323 instead of 23 (install_telnet).
      return port == ((addr % 16) == 0 ? 2323 : 23);
    case P::kMqtt: return port == 1883;
    case P::kAmqp: return port == 5672;
    case P::kXmpp: return port == 5222 || port == 5269;
    default: return false;  // CoAP/UPnP devices expose no TCP listener
  }
}

// Predicted UDP bindings, same contract as predicted_tcp_listener.
bool predicted_udp_binding(proto::Protocol protocol, std::uint16_t port) {
  using P = proto::Protocol;
  switch (protocol) {
    case P::kCoap: return port == 5683;
    case P::kUpnp: return port == 1900;
    default: return false;
  }
}

}  // namespace

Population::Population(PopulationSpec spec) : spec_(spec) {}
Population::~Population() { detach_all(); }

std::uint64_t Population::scaled(std::uint64_t paper_count) const {
  if (paper_count == 0) return 0;
  const auto scaled_count = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(paper_count) * spec_.scale));
  return std::max<std::uint64_t>(scaled_count, 1);
}

void Population::allocate_prefixes(std::uint64_t device_total) {
  // Enough /20s (4,096 addresses each) to hold device_total at the
  // configured density, distributed over countries by the Table 10 shares.
  // /20 granularity keeps the scan's sweep space proportional to the
  // population instead of paying 64k addresses per prefix at small scales.
  constexpr std::uint64_t kPrefixSize = 4'096;
  const auto needed_prefixes = static_cast<std::size_t>(
      device_total / (static_cast<double>(kPrefixSize) * spec_.density) + 1.5);

  std::vector<double> country_weights;
  for (const auto& row : paper::table10()) {
    country_weights.push_back(static_cast<double>(row.devices));
  }
  const auto per_country = apportion(
      std::max<std::uint64_t>(needed_prefixes, country_weights.size()),
      country_weights);

  const auto& bases = usable_slash8();
  std::size_t base_index = 0;
  std::uint32_t slot = 0;  // /20 slot within the /8: 4096 slots
  for (std::size_t c = 0; c < per_country.size(); ++c) {
    for (std::uint64_t i = 0; i < per_country[c]; ++i) {
      const std::uint32_t base_value =
          (std::uint32_t{bases[base_index]} << 24) | (slot << 12);
      prefixes_.push_back(util::Cidr(util::Ipv4Addr(base_value), 20));
      prefix_country_.emplace_back(paper::table10()[c].country);
      slot += 293;  // prime stride decorrelates prefixes from countries
      if (slot >= 4'096) {
        slot %= 4'096;
        base_index = (base_index + 1) % bases.size();
      }
    }
  }
}

util::Ipv4Addr Population::next_address(util::Rng& rng) {
  // Geometric gaps give the prefix the configured host density.
  const double density = std::clamp(spec_.density, 0.01, 1.0);
  std::uint64_t gap = 1;
  while (rng.uniform() > density && gap < 32) ++gap;
  cursor_offset_ += gap;
  if (cursor_offset_ >= prefixes_[cursor_prefix_].size() - 1) {
    cursor_offset_ = 1;
    cursor_prefix_ = (cursor_prefix_ + 1) % prefixes_.size();
  }
  return util::Ipv4Addr(prefixes_[cursor_prefix_].base().value() +
                        static_cast<std::uint32_t>(cursor_offset_));
}

void Population::build() {
  util::Rng rng = util::Rng(spec_.seed).fork("population");

  // Scaled per-protocol totals (Table 4, ZMap column).
  struct ProtocolPlan {
    proto::Protocol protocol;
    std::uint64_t exposed;
    std::vector<std::pair<Misconfig, std::uint64_t>> misconfigs;
  };
  std::vector<ProtocolPlan> plans;
  std::uint64_t device_total = 0;
  for (const auto& row : paper::table4()) {
    ProtocolPlan plan;
    plan.protocol = row.protocol;
    plan.exposed = scaled(row.zmap);
    device_total += plan.exposed;
    plans.push_back(plan);
  }

  // Fold Table 5 misconfiguration counts into the plans.
  const auto misconfig_of = [](const paper::MisconfigRow& row) {
    using P = proto::Protocol;
    if (row.protocol == P::kTelnet) {
      return row.vulnerability == "No auth, root access"
                 ? Misconfig::kTelnetNoAuthRoot
                 : Misconfig::kTelnetNoAuth;
    }
    if (row.protocol == P::kMqtt) return Misconfig::kMqttNoAuth;
    if (row.protocol == P::kAmqp) return Misconfig::kAmqpNoAuth;
    if (row.protocol == P::kXmpp) {
      return row.vulnerability == "Anonymous login" ? Misconfig::kXmppAnonymous
                                                    : Misconfig::kXmppPlaintext;
    }
    if (row.protocol == P::kCoap) {
      if (row.vulnerability == "No auth, admin access") {
        return Misconfig::kCoapAdminAccess;
      }
      if (row.vulnerability == "No auth") return Misconfig::kCoapNoAuth;
      return Misconfig::kCoapReflector;
    }
    return Misconfig::kUpnpReflector;
  };
  for (const auto& row : paper::table5()) {
    for (auto& plan : plans) {
      if (plan.protocol == row.protocol) {
        plan.misconfigs.push_back({misconfig_of(row), scaled(row.devices)});
      }
    }
  }

  allocate_prefixes(device_total);

  // First covering prefix per /20 base — the same prefix the old
  // first-match linear walk found (the prefix pool can repeat a base once
  // the slot stride wraps, so "first" matters for country/ASN assignment).
  std::unordered_map<std::uint32_t, std::uint32_t> first_prefix;
  first_prefix.reserve(prefixes_.size() * 2);
  for (std::size_t p = 0; p < prefixes_.size(); ++p) {
    first_prefix.emplace(prefixes_[p].base().value(),
                         static_cast<std::uint32_t>(p));
  }

  addresses_.reserve(device_total);
  prefix_index_.reserve(device_total);
  models_.reserve(device_total);
  type_index_.reserve(device_total);
  primary_.reserve(device_total);
  misconfig_.reserve(device_total);
  flags_.reserve(device_total);

  // Country assignment follows the prefix the address lands in, so the
  // country distribution is inherited from the prefix allocation.
  for (const auto& plan : plans) {
    // Per-device-type model pools for this protocol, hoisted out of the
    // per-device loop (they depend only on the plan). A pool stays empty
    // for "Unidentified" shares: no model draw happens for those, exactly
    // as the per-device string comparison used to decide.
    const auto& shares = type_shares(plan.protocol);
    std::vector<double> weights;
    for (const auto& share : shares) weights.push_back(share.share);
    const auto models = models_for(plan.protocol);
    std::vector<std::vector<const DeviceModel*>> pools(shares.size());
    for (std::size_t t = 0; t < shares.size(); ++t) {
      if (shares[t].device_type == "Unidentified") continue;
      for (const auto* model : models) {
        if (model->device_type == shares[t].device_type) {
          pools[t].push_back(model);
        }
      }
    }

    std::uint64_t misconfig_budget = 0;
    for (const auto& [kind, count] : plan.misconfigs) misconfig_budget += count;

    std::uint64_t misconfig_index = 0;    // which misconfig bucket
    std::uint64_t misconfig_emitted = 0;  // within the bucket

    for (std::uint64_t i = 0; i < plan.exposed; ++i) {
      const util::Ipv4Addr address = next_address(rng);

      // The first `misconfig_budget` devices of each protocol receive the
      // misconfigurations; addresses are already decorrelated from order.
      Misconfig misconfig = Misconfig::kNone;
      std::uint8_t flags = 0;
      if (i < misconfig_budget) {
        while (misconfig_index < plan.misconfigs.size() &&
               misconfig_emitted >= plan.misconfigs[misconfig_index].second) {
          misconfig_emitted = 0;
          ++misconfig_index;
        }
        if (misconfig_index < plan.misconfigs.size()) {
          misconfig = plan.misconfigs[misconfig_index].first;
          ++misconfig_emitted;
        }
      } else if (rng.chance(spec_.weak_credential_share)) {
        flags |= kWeakCredentialsBit;
      }

      // Device type / model.
      const std::size_t type_index = rng.weighted(weights);
      const DeviceModel* model = nullptr;
      if (type_index < pools.size() && !pools[type_index].empty()) {
        model = pools[type_index][rng.below(pools[type_index].size())];
      }

      if (misconfig != Misconfig::kNone && rng.chance(spec_.infected_share)) {
        flags |= kInfectedBit;
      }

      addresses_.push_back(address.value());
      prefix_index_.push_back(first_prefix.at(address.value() & 0xFFFFF000u));
      models_.push_back(model);
      type_index_.push_back(type_index < shares.size()
                                ? static_cast<std::uint8_t>(type_index)
                                : kUntypedIndex);
      primary_.push_back(static_cast<std::uint8_t>(plan.protocol));
      misconfig_.push_back(static_cast<std::uint8_t>(misconfig));
      flags_.push_back(flags);
    }
  }

  materialized_.resize(addresses_.size());

  by_address_.reserve(addresses_.size());
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    by_address_.push_back({addresses_[i], static_cast<std::uint32_t>(i)});
  }
  std::sort(by_address_.begin(), by_address_.end());
  for (std::size_t i = 0; i < by_address_.size();) {
    std::size_t j = i + 1;
    while (j < by_address_.size() &&
           by_address_[j].first == by_address_[i].first) {
      ++j;
    }
    if (j - i > 1) {
      for (std::size_t k = i; k < j; ++k) {
        duplicate_rows_.push_back(by_address_[k].second);
      }
    }
    i = j;
  }
  std::sort(duplicate_rows_.begin(), duplicate_rows_.end());
}

DeviceSpec Population::spec_at(std::uint64_t i) const {
  DeviceSpec spec;
  spec.address = util::Ipv4Addr(addresses_[i]);
  spec.model = models_[i];
  spec.primary = static_cast<proto::Protocol>(primary_[i]);
  if (type_index_[i] != kUntypedIndex) {
    const auto& shares = type_shares(spec.primary);
    spec.device_type = std::string(shares[type_index_[i]].device_type);
  }
  spec.country = prefix_country_[prefix_index_[i]];
  spec.asn = static_cast<std::uint32_t>(64'000 + prefix_index_[i]);
  spec.misconfig = static_cast<Misconfig>(misconfig_[i]);
  spec.weak_credentials = (flags_[i] & kWeakCredentialsBit) != 0;
  spec.infected = (flags_[i] & kInfectedBit) != 0;
  return spec;
}

std::optional<std::uint64_t> Population::index_of(util::Ipv4Addr addr) const {
  auto it = std::upper_bound(
      by_address_.begin(), by_address_.end(),
      std::make_pair(addr.value(), std::numeric_limits<std::uint32_t>::max()));
  if (it == by_address_.begin()) return std::nullopt;
  --it;
  if (it->first != addr.value()) return std::nullopt;
  return it->second;
}

Device* Population::device_at(std::uint64_t i) {
  auto& slot = materialized_[i];
  if (slot == nullptr) slot = std::make_unique<Device>(spec_at(i));
  if (fabric_ != nullptr && !slot->attached()) slot->attach(*fabric_);
  return slot.get();
}

std::uint64_t Population::materialized_count() const {
  std::uint64_t count = 0;
  for (const auto& device : materialized_) {
    if (device != nullptr) ++count;
  }
  return count;
}

Population::Verdict Population::classify(const net::Packet& packet) const {
  const auto row = index_of(packet.dst);
  if (!row) return Verdict::kNotOwned;
  if (materialized_[*row] != nullptr) {
    // Materialized but not registered: the device was detached (teardown or
    // churn), so the address no longer answers — same as a vanished host.
    return Verdict::kNotOwned;
  }
  const auto protocol = static_cast<proto::Protocol>(primary_[*row]);
  if (packet.transport == net::Transport::kUdp) {
    // Unbound UDP ports are silent (no ICMP in the model): consumed without
    // reaction, so no materialization needed.
    return predicted_udp_binding(protocol, packet.dst_port)
               ? Verdict::kMaterialize
               : Verdict::kConsume;
  }
  // TCP: a fresh stack silently ignores anything without a matching
  // connection except a SYN, which either reaches a listener (materialize:
  // the handshake builds state) or draws a closed-port RST.
  if (!packet.is_syn_only()) return Verdict::kConsume;
  return predicted_tcp_listener(protocol, addresses_[*row], packet.dst_port)
             ? Verdict::kMaterialize
             : Verdict::kReset;
}

net::Host* Population::materialize(util::Ipv4Addr addr) {
  const auto row = index_of(addr);
  if (!row) return nullptr;
  return device_at(*row);
}

void Population::attach_all(net::Fabric& fabric) {
  fabric_ = &fabric;
  fabric.set_lazy_source(this);
  // Devices sharing an address must exist eagerly: with both attached (in
  // build order), the fabric's host map holds the later one — identical to
  // the eager world's last-registration-wins. Lazy classification would
  // otherwise answer for the canonical row only.
  for (const std::uint32_t row : duplicate_rows_) device_at(row);
}

void Population::detach_all() {
  if (fabric_ == nullptr) return;
  for (auto& device : materialized_) {
    if (device != nullptr && device->attached()) device->detach();
  }
  fabric_->clear_lazy_source(this);
  fabric_ = nullptr;
}

util::Ipv4Addr Population::allocate_extra() {
  util::Rng rng = util::Rng(spec_.seed).fork("extras");
  // Walk forward from the cursor; skip occupied addresses.
  for (;;) {
    const util::Ipv4Addr addr = next_address(rng);
    bool taken = false;
    if (fabric_ != nullptr && fabric_->host_at(addr) != nullptr) taken = true;
    if (!taken && index_of(addr).has_value()) taken = true;
    if (!taken) return addr;
  }
}

std::uint64_t Population::misconfigured_count() const {
  std::uint64_t count = 0;
  for (const auto value : misconfig_) {
    if (value != static_cast<std::uint8_t>(Misconfig::kNone)) ++count;
  }
  return count;
}

std::uint64_t Population::infected_count() const {
  std::uint64_t count = 0;
  for (const auto flags : flags_) {
    if ((flags & kInfectedBit) != 0) ++count;
  }
  return count;
}

std::uint64_t Population::count_for(proto::Protocol protocol) const {
  std::uint64_t count = 0;
  const auto wanted = static_cast<std::uint8_t>(protocol);
  for (const auto value : primary_) {
    if (value == wanted) ++count;
  }
  return count;
}

}  // namespace ofh::devices
