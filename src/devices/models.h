// Device model registry: the model names, device types and banner/response
// identifiers of paper Table 11 ("Most common device-types with identifiers
// in banners/response"), used both to configure simulated devices and as
// signatures for the ZTag-style device-type tagger.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "proto/service.h"

namespace ofh::devices {

struct DeviceModel {
  std::string_view model;        // "HiKVision Camera"
  std::string_view device_type;  // "Camera"
  proto::Protocol protocol;      // protocol carrying the identifier
  std::string_view identifier;   // the banner/response fragment
};

// All Table 11 entries.
const std::vector<DeviceModel>& device_models();

// Models whose identifier rides on a given protocol.
std::vector<const DeviceModel*> models_for(proto::Protocol protocol);

// The device-type mix the population plants per protocol, approximating the
// paper's Figure 2 (device types by protocol). Types that the paper could
// not identify map to "Unidentified".
struct TypeShare {
  std::string_view device_type;
  double share;
};
const std::vector<TypeShare>& type_shares(proto::Protocol protocol);

}  // namespace ofh::devices
