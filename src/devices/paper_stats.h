// The paper's reported numbers (ground truth targets for the simulated
// population and "paper" columns in the bench reports). All values are
// transcribed from Srinivasa et al., IMC 2021.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "proto/service.h"

namespace ofh::devices::paper {

// Table 4: exposed systems on the Internet by protocol and source.
struct ExposedRow {
  proto::Protocol protocol;
  std::uint64_t zmap;
  std::uint64_t sonar;   // 0 = NA (no dataset for this protocol)
  std::uint64_t shodan;
};
inline const std::vector<ExposedRow>& table4() {
  static const std::vector<ExposedRow> kRows = {
      {proto::Protocol::kAmqp, 34'542, 0, 18'701},
      {proto::Protocol::kXmpp, 423'867, 0, 315'861},
      {proto::Protocol::kCoap, 618'650, 438'098, 590'740},
      {proto::Protocol::kUpnp, 1'381'940, 395'331, 433'571},
      {proto::Protocol::kMqtt, 4'842'465, 3'921'585, 162'216},
      {proto::Protocol::kTelnet, 7'096'465, 6'004'956, 188'291},
  };
  return kRows;
}
inline constexpr std::uint64_t kTable4ZmapTotal = 14'397'929;

// Table 5: misconfigured devices per protocol and vulnerability.
struct MisconfigRow {
  proto::Protocol protocol;
  std::string_view vulnerability;
  std::uint64_t devices;
};
inline const std::vector<MisconfigRow>& table5() {
  static const std::vector<MisconfigRow> kRows = {
      {proto::Protocol::kCoap, "No auth, admin access", 427},
      {proto::Protocol::kAmqp, "No auth", 2'731},
      {proto::Protocol::kTelnet, "No auth", 4'013},
      {proto::Protocol::kXmpp, "No encryption", 5'421},
      {proto::Protocol::kCoap, "No auth", 9'067},
      {proto::Protocol::kTelnet, "No auth, root access", 22'887},
      {proto::Protocol::kMqtt, "No auth", 102'891},
      {proto::Protocol::kXmpp, "Anonymous login", 143'986},
      {proto::Protocol::kCoap, "Reflection-attack resource", 543'341},
      {proto::Protocol::kUpnp, "Reflection-attack resource", 998'129},
  };
  return kRows;
}
inline constexpr std::uint64_t kTable5Total = 1'832'893;

// Table 6: honeypots detected through Telnet banner signatures.
struct HoneypotRow {
  std::string_view honeypot;
  std::uint64_t instances;
};
inline const std::vector<HoneypotRow>& table6() {
  static const std::vector<HoneypotRow> kRows = {
      {"HoneyPy", 27},    {"Cowrie", 3'228},     {"MTPot", 194},
      {"TelnetIoT", 211}, {"Conpot", 216},       {"Kippo", 47},
      {"Kako", 16},       {"Hontel", 12},        {"Anglerfish", 4'241},
  };
  return kRows;
}
inline constexpr std::uint64_t kTable6Total = 8'192;

// Table 10: misconfigured devices by country (share of the 1.83M total).
struct CountryRow {
  std::string_view country;
  std::uint64_t devices;
};
inline const std::vector<CountryRow>& table10() {
  static const std::vector<CountryRow> kRows = {
      {"USA", 494'881},        {"China", 238'276},
      {"Russia", 166'793},     {"Taiwan", 163'127},
      {"Germany", 142'966},    {"Philippines", 113'639},
      {"UK", 106'308},         {"Brazil", 60'485},
      {"India", 58'653},       {"Thailand", 49'488},
      {"Hong Kong", 45'822},   {"South Korea", 45'822},
      {"Israel", 38'491},      {"Canada", 34'825},
      {"Other", 23'828},       {"Bangladesh", 20'162},
      {"France", 16'496},      {"Japan", 12'830},
  };
  return kRows;
}

// Table 7: attack events by honeypot and protocol over one month.
struct AttackRow {
  std::string_view honeypot;
  proto::Protocol protocol;
  std::uint64_t events;
};
inline const std::vector<AttackRow>& table7() {
  static const std::vector<AttackRow> kRows = {
      {"HosTaGe", proto::Protocol::kTelnet, 19'733},
      {"HosTaGe", proto::Protocol::kMqtt, 2'511},
      {"HosTaGe", proto::Protocol::kAmqp, 2'780},
      {"HosTaGe", proto::Protocol::kCoap, 11'543},
      {"HosTaGe", proto::Protocol::kSsh, 19'174},
      {"HosTaGe", proto::Protocol::kHttp, 16'192},
      {"HosTaGe", proto::Protocol::kSmb, 1'830},
      {"U-Pot", proto::Protocol::kUpnp, 17'101},
      {"Conpot", proto::Protocol::kSsh, 12'837},
      {"Conpot", proto::Protocol::kTelnet, 12'377},
      {"Conpot", proto::Protocol::kS7, 7'113},
      {"Conpot", proto::Protocol::kHttp, 11'313},
      {"ThingPot", proto::Protocol::kXmpp, 11'344},
      {"Cowrie", proto::Protocol::kSsh, 15'459},
      {"Cowrie", proto::Protocol::kTelnet, 14'963},
      {"Dionaea", proto::Protocol::kHttp, 11'974},
      {"Dionaea", proto::Protocol::kMqtt, 1'557},
      {"Dionaea", proto::Protocol::kFtp, 3'565},
      {"Dionaea", proto::Protocol::kSmb, 6'873},
  };
  return kRows;
}
inline constexpr std::uint64_t kTable7Total = 200'209;

// Table 7 per-honeypot unique source-IP classification.
struct SourceClassRow {
  std::string_view honeypot;
  std::uint64_t scanning_service;
  std::uint64_t malicious;
  std::uint64_t unknown;
};
inline const std::vector<SourceClassRow>& table7_sources() {
  static const std::vector<SourceClassRow> kRows = {
      {"HosTaGe", 2'866, 21'189, 2'347}, {"U-Pot", 1'121, 7'814, 1'786},
      {"Conpot", 1'678, 11'765, 1'876},  {"ThingPot", 967, 2'172, 963},
      {"Cowrie", 2'111, 12'874, 1'113},  {"Dionaea", 1'953, 13'876, 1'694},
  };
  return kRows;
}

// Table 8: daily average telescope requests per protocol and unique IPs.
struct TelescopeRow {
  proto::Protocol protocol;
  std::uint64_t daily_avg;
  std::uint64_t unique_ips;
  std::uint64_t scanning_service_ips;
  std::uint64_t suspicious_ips;
};
inline const std::vector<TelescopeRow>& table8() {
  static const std::vector<TelescopeRow> kRows = {
      {proto::Protocol::kTelnet, 2'554'585'920, 85'615'200, 4'142,
       85'611'058},
      {proto::Protocol::kUpnp, 131'794'560, 18'633, 2'279, 16'354},
      {proto::Protocol::kCoap, 68'353'920, 2'342, 627, 1'715},
      {proto::Protocol::kMqtt, 17'072'640, 5'572, 1'248, 4'324},
      {proto::Protocol::kAmqp, 13'907'520, 7'132, 2'256, 4'876},
      {proto::Protocol::kXmpp, 6'429'600, 4'255, 1'973, 2'282},
  };
  return kRows;
}

// Table 12: top Telnet and SSH credentials used by adversaries.
struct CredentialRow {
  proto::Protocol protocol;
  std::string_view user;
  std::string_view pass;
  std::uint64_t count;
};
inline const std::vector<CredentialRow>& table12() {
  static const std::vector<CredentialRow> kRows = {
      {proto::Protocol::kTelnet, "admin", "admin", 9'772},
      {proto::Protocol::kTelnet, "root", "root", 1'721},
      {proto::Protocol::kTelnet, "root", "admin", 1'254},
      {proto::Protocol::kTelnet, "telnet", "telnet", 689},
      {proto::Protocol::kTelnet, "root", "xc3511", 556},
      {proto::Protocol::kTelnet, "admin", "admin123", 467},
      {proto::Protocol::kTelnet, "root", "12345", 456},
      {proto::Protocol::kTelnet, "user", "user", 321},
      {proto::Protocol::kTelnet, "admin", "12345", 267},
      {proto::Protocol::kTelnet, "admin", "polycom", 217},
      {proto::Protocol::kTelnet, "admin", "", 198},
      {proto::Protocol::kSsh, "admin", "admin", 11'543},
      {proto::Protocol::kSsh, "root", "root", 3'432},
      {proto::Protocol::kSsh, "root", "admin", 1'943},
      {proto::Protocol::kSsh, "zyfwp", "PrOw!aN_fXp", 1'538},
      {proto::Protocol::kSsh, "cisco", "cisco", 629},
      {proto::Protocol::kSsh, "admin", "ssh1234", 254},
  };
  return kRows;
}

// Section 5.3: infected-device correlation.
inline constexpr std::uint64_t kInfectedTotal = 11'118;
inline constexpr std::uint64_t kInfectedHoneypotsOnly = 1'147;
inline constexpr std::uint64_t kInfectedTelescopeOnly = 1'274;
inline constexpr std::uint64_t kInfectedBoth = 8'697;
inline constexpr std::uint64_t kCensysExtraIot = 1'671;
inline constexpr std::uint64_t kMultistageAttacks = 267;  // Figure 9
inline constexpr std::uint64_t kMiraiVariants = 113;      // Section 5.1.1
inline constexpr std::uint64_t kTorRelayIps = 151;        // Section 5.1.6

// Honeypot/telescope scanning-service totals.
inline constexpr std::uint64_t kHoneypotScanServiceIps = 10'696;
inline constexpr std::uint64_t kGreynoiseMissedIps = 2'023;  // Figure 5

}  // namespace ofh::devices::paper
