// Misconfiguration taxonomy (paper Tables 2, 3 and 5). A device is
// misconfigured when its configuration lacks authentication, encryption or
// authorization (NIST's definition quoted in the paper's introduction).
#pragma once

#include <cstdint>
#include <string_view>

#include "proto/service.h"

namespace ofh::devices {

enum class Misconfig : std::uint8_t {
  kNone,
  kTelnetNoAuth,      // unauthenticated console ("$" prompt)
  kTelnetNoAuthRoot,  // unauthenticated root console ("root@...:~$")
  kMqttNoAuth,        // CONNACK return code 0 without credentials
  kAmqpNoAuth,        // ANONYMOUS accepted / CVE-affected broker version
  kXmppPlaintext,     // only PLAIN over non-TLS ("No encryption")
  kXmppAnonymous,     // SASL ANONYMOUS accepted
  kCoapNoAuth,        // all resources readable/writable
  kCoapAdminAccess,   // admin resource exposed ("220-Admin")
  kCoapReflector,     // /.well-known/core answers any source
  kUpnpReflector,     // SSDP M-SEARCH answers any source
};

constexpr std::string_view misconfig_name(Misconfig misconfig) {
  switch (misconfig) {
    case Misconfig::kNone: return "none";
    case Misconfig::kTelnetNoAuth: return "No auth";
    case Misconfig::kTelnetNoAuthRoot: return "No auth, root access";
    case Misconfig::kMqttNoAuth: return "No auth";
    case Misconfig::kAmqpNoAuth: return "No auth";
    case Misconfig::kXmppPlaintext: return "No encryption";
    case Misconfig::kXmppAnonymous: return "Anonymous login";
    case Misconfig::kCoapNoAuth: return "No auth";
    case Misconfig::kCoapAdminAccess: return "No auth, admin access";
    case Misconfig::kCoapReflector: return "Reflection-attack resource";
    case Misconfig::kUpnpReflector: return "Reflection-attack resource";
  }
  return "?";
}

constexpr proto::Protocol misconfig_protocol(Misconfig misconfig) {
  switch (misconfig) {
    case Misconfig::kTelnetNoAuth:
    case Misconfig::kTelnetNoAuthRoot:
      return proto::Protocol::kTelnet;
    case Misconfig::kMqttNoAuth:
      return proto::Protocol::kMqtt;
    case Misconfig::kAmqpNoAuth:
      return proto::Protocol::kAmqp;
    case Misconfig::kXmppPlaintext:
    case Misconfig::kXmppAnonymous:
      return proto::Protocol::kXmpp;
    case Misconfig::kCoapNoAuth:
    case Misconfig::kCoapAdminAccess:
    case Misconfig::kCoapReflector:
      return proto::Protocol::kCoap;
    case Misconfig::kUpnpReflector:
    case Misconfig::kNone:
      return proto::Protocol::kUpnp;
  }
  return proto::Protocol::kUpnp;
}

}  // namespace ofh::devices
