#include "devices/device.h"

#include "proto/amqp.h"
#include "proto/coap.h"
#include "proto/mqtt.h"
#include "proto/ssdp.h"
#include "proto/telnet.h"
#include "proto/xmpp.h"
#include "util/rng.h"

namespace ofh::devices {

Device::Device(DeviceSpec spec) : net::Host(spec.address), spec_(std::move(spec)) {}

Device::~Device() = default;

void Device::on_attached() {
  switch (spec_.primary) {
    case proto::Protocol::kTelnet: install_telnet(); break;
    case proto::Protocol::kMqtt: install_mqtt(); break;
    case proto::Protocol::kCoap: install_coap(); break;
    case proto::Protocol::kAmqp: install_amqp(); break;
    case proto::Protocol::kXmpp: install_xmpp(); break;
    case proto::Protocol::kUpnp: install_upnp(); break;
    default: break;
  }
  for (auto& service : services_) service->install(*this);
}

void Device::install_telnet() {
  using proto::telnet::TelnetServer;
  using proto::telnet::TelnetServerConfig;

  const std::string banner =
      spec_.model != nullptr ? std::string(spec_.model->identifier) + "\r\n"
                             : "BusyBox v1.20.2 (2016-09-13) built-in shell\r\n";

  TelnetServerConfig config;
  switch (spec_.misconfig) {
    case Misconfig::kTelnetNoAuthRoot:
      config = TelnetServerConfig::open_console("root@device:~$ ", banner);
      break;
    case Misconfig::kTelnetNoAuth:
      config = TelnetServerConfig::open_console("$ ", banner);
      break;
    default: {
      proto::AuthConfig auth;
      auth.valid.push_back(spec_.weak_credentials
                               ? proto::Credentials{"admin", "admin"}
                               : spec_.credentials);
      config = TelnetServerConfig::login_console(banner, std::move(auth));
      config.shell_prompt = "$ ";
      break;
    }
  }
  // A camera's console and a modem's console answer a couple of common
  // commands; bots use these for fingerprinting before dropping payloads.
  config.command_responses = {
      {"cat /proc/cpuinfo", "Processor : ARMv7\r\n"},
      {"uname", "Linux device 3.10.0 armv7l\r\n"},
      {"busybox", "BusyBox v1.20.2 multi-call binary.\r\n"},
  };
  // Scan both Telnet ports: some devices listen on 2323 (the paper's
  // explanation for its higher Telnet counts vs Project Sonar).
  const bool alt_port = (spec_.address.value() % 16) == 0;
  config.port = alt_port ? 2323 : 23;
  services_.push_back(std::make_unique<TelnetServer>(std::move(config)));
}

void Device::install_mqtt() {
  using proto::mqtt::Broker;
  using proto::mqtt::BrokerConfig;

  BrokerConfig config;
  if (spec_.misconfig == Misconfig::kMqttNoAuth) {
    config.auth = proto::AuthConfig::open();
  } else {
    config.auth.valid.push_back(spec_.weak_credentials
                                    ? proto::Credentials{"admin", "admin"}
                                    : spec_.credentials);
  }
  if (spec_.model != nullptr) {
    // Retained telemetry under the model's characteristic topic prefix.
    config.retained.push_back(
        {std::string(spec_.model->identifier) + "state", "online"});
    config.retained.push_back(
        {std::string(spec_.model->identifier) + "telemetry", "23.5"});
  } else {
    config.retained.push_back({"devices/generic/uptime", "3600"});
  }
  services_.push_back(std::make_unique<Broker>(std::move(config)));
}

void Device::install_coap() {
  using proto::coap::CoapServer;
  using proto::coap::CoapServerConfig;
  using proto::coap::Resource;

  CoapServerConfig config;
  switch (spec_.misconfig) {
    case Misconfig::kCoapAdminAccess:
      config.open_access = true;
      config.resources.push_back(
          Resource{"admin", "core.admin", "220-Admin", true});
      break;
    case Misconfig::kCoapNoAuth:
      config.open_access = true;
      break;
    case Misconfig::kCoapReflector:
      // Discovery is open (the reflection resource) but resources are
      // protected: only the /.well-known/core response leaks.
      config.open_access = false;
      config.discovery_padding = 512;  // verbose resource table
      break;
    default:
      config.open_access = false;
      config.expose_discovery = false;
      break;
  }
  if (spec_.model != nullptr) {
    config.resources.push_back(Resource{
        std::string(spec_.model->identifier), "core.rd", "ack", false});
  }
  config.resources.push_back(Resource{"sensors/temp", "ucum:Cel", "21.3", true});
  config.resources.push_back(Resource{"sensors/state", "core.s", "x1C", true});
  services_.push_back(std::make_unique<CoapServer>(std::move(config)));
}

void Device::install_amqp() {
  using proto::amqp::AmqpBroker;
  using proto::amqp::AmqpBrokerConfig;

  AmqpBrokerConfig config;
  if (spec_.misconfig == Misconfig::kAmqpNoAuth) {
    config.auth = proto::AuthConfig::open();
    // The paper ties the "No auth" AMQP finding to CVE-affected versions.
    config.version = (spec_.address.value() % 2) == 0 ? "2.7.1" : "2.8.4";
  } else {
    config.version = "3.8.9";
    config.auth.valid.push_back(spec_.weak_credentials
                                    ? proto::Credentials{"guest", "guest"}
                                    : spec_.credentials);
  }
  config.queues.push_back({"telemetry", {"reading=ok"}});
  services_.push_back(std::make_unique<AmqpBroker>(std::move(config)));
}

void Device::install_xmpp() {
  using proto::xmpp::XmppServer;
  using proto::xmpp::XmppServerConfig;

  XmppServerConfig config;
  switch (spec_.misconfig) {
    case Misconfig::kXmppAnonymous:
      config.auth = proto::AuthConfig::anonymous();
      break;
    case Misconfig::kXmppPlaintext:
      config.auth.plaintext_only = true;
      config.auth.valid.push_back(spec_.credentials);
      config.starttls_required = false;
      break;
    default:
      config.auth.valid.push_back(spec_.credentials);
      config.starttls_required = true;
      break;
  }
  services_.push_back(std::make_unique<XmppServer>(std::move(config)));
}

void Device::install_upnp() {
  using proto::ssdp::UpnpDevice;
  using proto::ssdp::UpnpDeviceConfig;

  UpnpDeviceConfig config;
  // All exposed UPnP devices answer; only misconfigured ones disclose the
  // identifying headers and amplify (Table 4 exposed vs Table 5 reflector).
  config.respond_to_any = true;
  config.disclose_details = spec_.misconfig == Misconfig::kUpnpReflector;
  // Derive a stable per-device uuid from the address.
  const std::uint64_t mix = util::splitmix64(spec_.address.value());
  char uuid[40];
  std::snprintf(uuid, sizeof(uuid), "%08x-1a2c-4546-ac5d-%012llx",
                static_cast<unsigned>(mix >> 32),
                static_cast<unsigned long long>(mix & 0xffffffffffffULL));
  config.uuid = uuid;
  if (spec_.model != nullptr) {
    const std::string identifier(spec_.model->identifier);
    // Table 11 identifiers are header fragments like "Model Name: H108N";
    // split them back into the corresponding SSDP fields.
    const auto colon = identifier.find(": ");
    if (identifier.starts_with("Server:")) {
      config.server = identifier.substr(colon + 2);
    } else if (identifier.starts_with("Friendly Name:")) {
      config.friendly_name = identifier.substr(colon + 2);
    } else if (identifier.starts_with("Model Name:") ||
               identifier.starts_with("Model Number:") ||
               identifier.starts_with("Model Description:")) {
      config.model_name = identifier.substr(colon + 2);
    } else if (identifier.starts_with("Manufacturer:")) {
      config.manufacturer = identifier.substr(colon + 2);
    } else {
      config.friendly_name = identifier;
    }
  }
  config.responses_per_search = 3;  // root device + embedded device + service
  services_.push_back(std::make_unique<UpnpDevice>(std::move(config)));
}

}  // namespace ofh::devices
