// Synthetic Internet population. Plants devices across country-weighted /16
// prefixes so that, at the configured scale, the marginal distributions of
// the paper hold: exposed hosts per protocol (Table 4, ZMap column),
// misconfigurations (Table 5), countries (Table 10) and device types
// (Figure 2 / Table 11). The scanner then *measures* these distributions
// back — with known ground truth, recall is checkable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "devices/device.h"
#include "net/fabric.h"
#include "util/ipv4.h"
#include "util/rng.h"

namespace ofh::devices {

struct PopulationSpec {
  std::uint64_t seed = 42;
  // Population scale: paper counts are multiplied by this. 1/512 yields
  // ~28k devices — bench scale; tests use far smaller values.
  double scale = 1.0 / 512;
  // Hosts per address within an allocated prefix (the rest are dark).
  double density = 0.25;
  // Share of correctly-configured devices that still use weak/default
  // credentials (the population Mirai brute-forcing harvests).
  double weak_credential_share = 0.08;
  // Share of *misconfigured* devices that are infected and attack. The
  // paper observed 11,118 attacking out of 1,832,893 (~0.61%).
  double infected_share = 11'118.0 / 1'832'893.0;
};

class Population {
 public:
  explicit Population(PopulationSpec spec);
  ~Population();
  Population(const Population&) = delete;
  Population& operator=(const Population&) = delete;

  // Generates all devices (deterministic in the spec seed).
  void build();
  void attach_all(net::Fabric& fabric);
  void detach_all();

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }
  const std::vector<util::Cidr>& prefixes() const { return prefixes_; }
  // Country of each prefix, parallel to prefixes(): the ground truth the
  // synthetic geolocation database (intel/geo.h) is built from.
  const std::vector<std::string>& prefix_country() const {
    return prefix_country_;
  }
  const PopulationSpec& spec() const { return spec_; }

  // Scaled expectation of a paper count under this spec.
  std::uint64_t scaled(std::uint64_t paper_count) const;

  // Hands out a previously-unused address inside the populated prefixes
  // (honeypot deployments, attacker hosts, scanning services, ...).
  util::Ipv4Addr allocate_extra();

  // Ground-truth tallies for validation.
  std::uint64_t total_devices() const { return devices_.size(); }
  std::uint64_t misconfigured_count() const;
  std::uint64_t infected_count() const;
  std::uint64_t count_for(proto::Protocol protocol) const;

 private:
  void allocate_prefixes(std::uint64_t device_total);
  util::Ipv4Addr next_address(util::Rng& rng);

  PopulationSpec spec_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<util::Cidr> prefixes_;
  // Per-prefix country so extras inherit plausible geolocation.
  std::vector<std::string> prefix_country_;
  std::size_t cursor_prefix_ = 0;
  std::uint64_t cursor_offset_ = 1;  // skip .0 of each prefix
  net::Fabric* fabric_ = nullptr;
};

}  // namespace ofh::devices
