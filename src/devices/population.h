// Synthetic Internet population. Plants devices across country-weighted /16
// prefixes so that, at the configured scale, the marginal distributions of
// the paper hold: exposed hosts per protocol (Table 4, ZMap column),
// misconfigurations (Table 5), countries (Table 10) and device types
// (Figure 2 / Table 11). The scanner then *measures* these distributions
// back — with known ground truth, recall is checkable.
//
// Storage is struct-of-arrays: build() fills packed per-device columns
// (address, model, misconfig, flags — ~15 bytes/device), not Device heap
// objects. A real Device (host + services + TCP state, ~600 bytes plus
// allocator overhead) is materialized lazily, only when a packet would
// actually change its state: the population registers itself as the
// fabric's LazyHostSource and predicts, from the columns alone, whether a
// packet reaches a bound service. At paper scale (14.4M devices) the scan
// phase touches a few percent of hosts per shard, so the columns are the
// difference between ~2 GB and ~60 GB of resident population.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "devices/device.h"
#include "net/fabric.h"
#include "util/ipv4.h"
#include "util/rng.h"

namespace ofh::devices {

// The /8 bases the population (and everything that calls allocate_extra)
// draws addresses from; reserved/special-use ranges and the 44/8 darknet
// are excluded. StudyConfig::validate uses this to reject telescope ranges
// that would overlap populated space.
const std::vector<std::uint8_t>& usable_slash8();

struct PopulationSpec {
  std::uint64_t seed = 42;
  // Population scale: paper counts are multiplied by this. 1/512 yields
  // ~28k devices — bench scale; tests use far smaller values.
  double scale = 1.0 / 512;
  // Hosts per address within an allocated prefix (the rest are dark).
  double density = 0.25;
  // Share of correctly-configured devices that still use weak/default
  // credentials (the population Mirai brute-forcing harvests).
  double weak_credential_share = 0.08;
  // Share of *misconfigured* devices that are infected and attack. The
  // paper observed 11,118 attacking out of 1,832,893 (~0.61%).
  double infected_share = 11'118.0 / 1'832'893.0;
};

class Population : public net::LazyHostSource {
 public:
  explicit Population(PopulationSpec spec);
  ~Population() override;
  Population(const Population&) = delete;
  Population& operator=(const Population&) = delete;

  // Generates all devices (deterministic in the spec seed).
  void build();
  // Installs this population as the fabric's lazy host source. Only devices
  // whose address is duplicated (the address cursor wrapped a full pass over
  // the prefix pool) attach eagerly, to preserve the last-registration-wins
  // semantics eager attachment had; everything else materializes on demand.
  void attach_all(net::Fabric& fabric);
  void detach_all();

  // Per-device column accessors, indexed by build order.
  std::uint64_t size() const { return addresses_.size(); }
  util::Ipv4Addr address_at(std::uint64_t i) const {
    return util::Ipv4Addr(addresses_[i]);
  }
  proto::Protocol primary_at(std::uint64_t i) const {
    return static_cast<proto::Protocol>(primary_[i]);
  }
  Misconfig misconfig_at(std::uint64_t i) const {
    return static_cast<Misconfig>(misconfig_[i]);
  }
  bool misconfigured_at(std::uint64_t i) const {
    return misconfig_[i] != static_cast<std::uint8_t>(Misconfig::kNone);
  }
  bool weak_credentials_at(std::uint64_t i) const {
    return (flags_[i] & kWeakCredentialsBit) != 0;
  }
  bool infected_at(std::uint64_t i) const {
    return (flags_[i] & kInfectedBit) != 0;
  }
  const DeviceModel* model_at(std::uint64_t i) const { return models_[i]; }
  std::string country_at(std::uint64_t i) const {
    return prefix_country_[prefix_index_[i]];
  }
  // The full spec, reassembled from the columns. Exactly what the eager
  // build() used to store per device.
  DeviceSpec spec_at(std::uint64_t i) const;

  // The canonical device index owning an address (the last build index when
  // the cursor wrapped and assigned one address twice), or nullopt.
  std::optional<std::uint64_t> index_of(util::Ipv4Addr addr) const;

  // The materialized Device for index i, building (and attaching, when a
  // fabric is installed) it on first use.
  Device* device_at(std::uint64_t i);
  // Already-materialized device, or nullptr. Never builds.
  Device* materialized_at(std::uint64_t i) const {
    return materialized_[i].get();
  }
  std::uint64_t materialized_count() const;

  // LazyHostSource: predicts, from the packed columns, what the device's
  // stacks would do with the packet. Must agree with Device::on_attached's
  // service wiring — tests/population_test.cpp cross-checks the prediction
  // against real materialized stacks for every protocol.
  Verdict classify(const net::Packet& packet) const override;
  net::Host* materialize(util::Ipv4Addr addr) override;

  const std::vector<util::Cidr>& prefixes() const { return prefixes_; }
  // Country of each prefix, parallel to prefixes(): the ground truth the
  // synthetic geolocation database (intel/geo.h) is built from.
  const std::vector<std::string>& prefix_country() const {
    return prefix_country_;
  }
  const PopulationSpec& spec() const { return spec_; }

  // Scaled expectation of a paper count under this spec.
  std::uint64_t scaled(std::uint64_t paper_count) const;

  // Hands out a previously-unused address inside the populated prefixes
  // (honeypot deployments, attacker hosts, scanning services, ...).
  util::Ipv4Addr allocate_extra();

  // Ground-truth tallies for validation.
  std::uint64_t total_devices() const { return addresses_.size(); }
  std::uint64_t misconfigured_count() const;
  std::uint64_t infected_count() const;
  std::uint64_t count_for(proto::Protocol protocol) const;

 private:
  static constexpr std::uint8_t kWeakCredentialsBit = 0x01;
  static constexpr std::uint8_t kInfectedBit = 0x02;
  // type_index_ sentinel: the weighted draw fell past the share table
  // ("Unidentified", no model pool consulted).
  static constexpr std::uint8_t kUntypedIndex = 0xff;

  void allocate_prefixes(std::uint64_t device_total);
  util::Ipv4Addr next_address(util::Rng& rng);

  PopulationSpec spec_;
  // Packed per-device columns, parallel, indexed by build order.
  std::vector<std::uint32_t> addresses_;
  std::vector<std::uint32_t> prefix_index_;  // covering prefix (first match)
  std::vector<const DeviceModel*> models_;
  std::vector<std::uint8_t> type_index_;
  std::vector<std::uint8_t> primary_;    // proto::Protocol
  std::vector<std::uint8_t> misconfig_;  // devices::Misconfig
  std::vector<std::uint8_t> flags_;
  // Lazily-built Device objects, parallel to the columns.
  std::vector<std::unique_ptr<Device>> materialized_;
  // (address, build index) sorted for O(log n) address lookup. Where an
  // address repeats, the canonical owner is the highest build index —
  // matching the fabric's last-registration-wins map in the eager world.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> by_address_;
  // Build indices sharing an address with another device; attached eagerly.
  std::vector<std::uint32_t> duplicate_rows_;

  std::vector<util::Cidr> prefixes_;
  // Per-prefix country so extras inherit plausible geolocation.
  std::vector<std::string> prefix_country_;
  std::size_t cursor_prefix_ = 0;
  std::uint64_t cursor_offset_ = 1;  // skip .0 of each prefix
  net::Fabric* fabric_ = nullptr;
};

}  // namespace ofh::devices
