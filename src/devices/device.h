// A simulated IoT device: a host whose services are derived from a spec
// (model, protocol, misconfiguration, credentials). The banners/responses a
// device emits come from the Table 11 model registry, so the scanner and
// classifier face realistic wire data rather than ground-truth labels.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "devices/misconfig.h"
#include "devices/models.h"
#include "net/host.h"
#include "proto/service.h"

namespace ofh::devices {

struct DeviceSpec {
  util::Ipv4Addr address;
  const DeviceModel* model = nullptr;  // nullptr => generic/unidentified
  std::string device_type = "Unidentified";
  std::string country = "Other";
  std::uint32_t asn = 0;
  proto::Protocol primary = proto::Protocol::kTelnet;
  Misconfig misconfig = Misconfig::kNone;
  // Correctly-configured devices still often ship weak/default credentials;
  // these are what Mirai-style bots brute-force (Table 12).
  bool weak_credentials = false;
  proto::Credentials credentials{"admin", "S3cure!pass"};
  // Marked devices run bot behaviour (the infected population of §5.3).
  bool infected = false;
};

class Device : public net::Host {
 public:
  explicit Device(DeviceSpec spec);
  ~Device() override;

  const DeviceSpec& spec() const { return spec_; }
  bool misconfigured() const { return spec_.misconfig != Misconfig::kNone; }

 protected:
  void on_attached() override;

 private:
  void install_telnet();
  void install_mqtt();
  void install_coap();
  void install_amqp();
  void install_xmpp();
  void install_upnp();

  DeviceSpec spec_;
  std::vector<std::unique_ptr<proto::Service>> services_;
};

}  // namespace ofh::devices
