#include "net/tcp.h"

#include "net/fabric.h"
#include "net/host.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ofh::net {

namespace {

// Connection-level telemetry across every TcpStack (one per host). All
// Domain::kSim: handshake outcomes are deterministic per shard.
struct TcpMetrics {
  obs::Counter connects = obs::counter("tcp.connects");
  obs::Counter established = obs::counter("tcp.connects_established");
  obs::Counter timeouts = obs::counter("tcp.connect_timeouts");
  obs::Counter refused = obs::counter("tcp.connects_refused");
  obs::Counter accepts = obs::counter("tcp.accepts");
  obs::Counter resets = obs::counter("tcp.resets_sent");
  obs::Counter backlog_drops = obs::counter("tcp.backlog_drops");
};

const TcpMetrics& metrics() {
  static const TcpMetrics m;
  return m;
}

// One kTcpState trace event per transition, seen from this endpoint. The
// port is always the *service* port (the listener side), so a connection's
// client and server transitions group under the same port in reports.
void trace_state(Host& host, const ConnKey& key, std::uint64_t trace_id,
                 obs::TcpTrace state, std::uint16_t service_port) {
  obs::trace_event(obs::TraceEventType::kTcpState, host.sim().now(), trace_id,
                   host.address().value(), key.remote.value(), service_port,
                   static_cast<std::uint8_t>(state));
}

}  // namespace

// ---------------------------------------------------------------- connection

void TcpConnection::send(util::Bytes data) {
  if (state_ != State::kEstablished) return;
  bytes_sent_ += data.size();
  stack_.send_data(key_, std::move(data));
}

void TcpConnection::close() {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  stack_.send_flags(key_, TcpFlags::kFin | TcpFlags::kAck);
  stack_.erase(key_);  // destroys *this; no member access beyond here
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  stack_.send_flags(key_, TcpFlags::kRst);
  stack_.erase(key_);
}

util::Ipv4Addr TcpConnection::local_addr() const {
  return stack_.host().address();
}

// --------------------------------------------------------------------- stack

void TcpStack::connect(util::Ipv4Addr dst, std::uint16_t dst_port,
                       ConnectHandler handler, sim::Duration timeout) {
  connect_ex(
      dst, dst_port,
      [handler = std::move(handler)](TcpConnection* conn, ConnectOutcome) {
        if (handler) handler(conn);
      },
      timeout);
}

void TcpStack::connect_ex(util::Ipv4Addr dst, std::uint16_t dst_port,
                          ConnectOutcomeHandler handler,
                          sim::Duration timeout) {
  // Allocate an unused ephemeral port for this (remote, remote_port) pair.
  ConnKey key{0, dst, dst_port};
  for (int attempts = 0; attempts < 0x8000; ++attempts) {
    key.local_port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ == 0xffff
                          ? static_cast<std::uint16_t>(32768)
                          : static_cast<std::uint16_t>(next_ephemeral_ + 1);
    if (conns_.find(key) == conns_.end()) break;
  }

  auto conn = std::unique_ptr<TcpConnection>(
      new TcpConnection(*this, key, TcpConnection::State::kSynSent));
  conn->opened_at_ = host_.sim().now();
  conn->trace_id_ = obs::current_trace_id();
  conn->generation_ = ++next_generation_;
  const std::uint64_t generation = conn->generation_;
  conns_[key] = std::move(conn);
  pending_connects_[key] = std::move(handler);
  metrics().connects.inc();
  trace_state(host_, key, obs::current_trace_id(), obs::TcpTrace::kSynSent,
              key.remote_port);
  send_flags(key, TcpFlags::kSyn);

  // The timeout is keyed by (key, generation): once this connection is
  // established and torn down, a later connection may reuse the key (the
  // ephemeral allocator wraps at 0xffff), and without the generation check
  // this stale timer would kill the newer, unrelated connection.
  host_.sim().after(timeout, [this, key, generation] {
    TcpConnection* conn = find(key);
    if (conn == nullptr || conn->generation_ != generation ||
        conn->state_ != TcpConnection::State::kSynSent) {
      return;  // already established, gone, or a newer incarnation
    }
    metrics().timeouts.inc();
    trace_state(host_, key, conn->trace_id_, obs::TcpTrace::kTimeout,
                key.remote_port);
    auto pending = pending_connects_.extract(key);
    erase(key);
    if (!pending.empty() && pending.mapped()) {
      pending.mapped()(nullptr, ConnectOutcome::kTimeout);
    }
  });
}

void TcpStack::handle(const Packet& packet) {
  const ConnKey key{packet.dst_port, packet.src, packet.src_port};
  TcpConnection* conn = find(key);
  // Service port for trace events: our local port when we listen on it
  // (server side), the remote port otherwise (client side).
  const std::uint16_t service_port =
      listeners_.count(key.local_port) != 0 ? key.local_port
                                            : key.remote_port;

  if (packet.has_flag(TcpFlags::kRst)) {
    if (conn == nullptr) return;
    const bool was_pending = conn->state_ == TcpConnection::State::kSynSent;
    conn->state_ = TcpConnection::State::kClosed;
    trace_state(host_, key, conn->trace_id_,
                was_pending ? obs::TcpTrace::kRefused : obs::TcpTrace::kReset,
                service_port);
    auto pending = pending_connects_.extract(key);
    auto on_close = conn->on_close;
    erase(key);
    if (was_pending) {
      metrics().refused.inc();
      if (!pending.empty() && pending.mapped()) {
        pending.mapped()(nullptr, ConnectOutcome::kRefused);
      }
    } else if (on_close) {
      // The connection object is gone; closing notifications for RST carry
      // a transient object so services can log the teardown.
      TcpConnection closed(*this, key, TcpConnection::State::kClosed);
      on_close(closed);
    }
    return;
  }

  if (packet.is_syn_only()) {
    // Inbound connection attempt.
    const auto listener = listeners_.find(packet.dst_port);
    if (listener == listeners_.end() || conn != nullptr ||
        half_open_count() >= backlog_limit_) {
      if (listener != listeners_.end() && conn == nullptr) {
        metrics().backlog_drops.inc();  // refused for capacity, not absence
      }
      Packet rst;
      rst.src = host_.address();
      rst.dst = packet.src;
      rst.src_port = packet.dst_port;
      rst.dst_port = packet.src_port;
      rst.transport = Transport::kTcp;
      rst.tcp_flags = TcpFlags::kRst;
      host_.fabric().send(std::move(rst));
      return;
    }
    auto server_conn = std::unique_ptr<TcpConnection>(
        new TcpConnection(*this, key, TcpConnection::State::kSynReceived));
    server_conn->opened_at_ = host_.sim().now();
    server_conn->trace_id_ = packet.trace_id;
    conns_[key] = std::move(server_conn);
    trace_state(host_, key, packet.trace_id, obs::TcpTrace::kSynReceived,
                key.local_port);
    send_flags(key, TcpFlags::kSyn | TcpFlags::kAck);
    // Garbage-collect half-open entries (e.g. spoofed SYNs never ACKed).
    host_.sim().after(kHalfOpenGcDelay, [this, key] {
      TcpConnection* half = find(key);
      if (half != nullptr &&
          half->state_ == TcpConnection::State::kSynReceived) {
        erase(key);
      }
    });
    return;
  }

  if (packet.has_flag(TcpFlags::kSyn) && packet.has_flag(TcpFlags::kAck)) {
    // SYN|ACK completing our active open.
    if (conn == nullptr || conn->state_ != TcpConnection::State::kSynSent) {
      return;
    }
    conn->state_ = TcpConnection::State::kEstablished;
    metrics().established.inc();
    trace_state(host_, key, conn->trace_id_, obs::TcpTrace::kEstablished,
                key.remote_port);
    send_flags(key, TcpFlags::kAck);
    auto pending = pending_connects_.extract(key);
    if (!pending.empty() && pending.mapped()) {
      pending.mapped()(conn, ConnectOutcome::kEstablished);
    }
    return;
  }

  if (packet.has_flag(TcpFlags::kFin)) {
    if (conn == nullptr) return;
    conn->state_ = TcpConnection::State::kClosed;
    trace_state(host_, key, conn->trace_id_, obs::TcpTrace::kClosed,
                service_port);
    auto on_close = conn->on_close;
    TcpConnection copy(*this, key, TcpConnection::State::kClosed);
    erase(key);
    if (on_close) on_close(copy);
    return;
  }

  if (packet.has_flag(TcpFlags::kAck) && packet.payload.empty()) {
    // Bare ACK: completes the passive open.
    if (conn != nullptr &&
        conn->state_ == TcpConnection::State::kSynReceived) {
      conn->state_ = TcpConnection::State::kEstablished;
      metrics().accepts.inc();
      trace_state(host_, key, conn->trace_id_, obs::TcpTrace::kAccepted,
                  key.local_port);
      const auto listener = listeners_.find(key.local_port);
      if (listener != listeners_.end() && listener->second) {
        listener->second(*conn);
      }
    }
    return;
  }

  if (!packet.payload.empty()) {
    if (conn == nullptr) return;
    if (conn->state_ == TcpConnection::State::kSynReceived) {
      // Data may arrive back-to-back with the ACK; promote implicitly.
      conn->state_ = TcpConnection::State::kEstablished;
      metrics().accepts.inc();
      trace_state(host_, key, conn->trace_id_, obs::TcpTrace::kAccepted,
                  key.local_port);
      const auto listener = listeners_.find(key.local_port);
      if (listener != listeners_.end() && listener->second) {
        listener->second(*conn);
      }
      conn = find(key);  // accept handler may have closed it
      if (conn == nullptr) return;
    }
    if (conn->state_ != TcpConnection::State::kEstablished) return;
    conn->bytes_received_ += packet.payload.size();
    if (conn->on_data) {
      // Invoke through a copy: the handler may close() the connection,
      // which erases it and would otherwise destroy the std::function
      // currently executing (and its captures) mid-call.
      auto on_data = conn->on_data;
      on_data(*conn, std::span<const std::uint8_t>(packet.payload));
    }
  }
}

void TcpStack::send_flags(const ConnKey& key, std::uint8_t flags) {
  if (flags & TcpFlags::kRst) metrics().resets.inc();
  Packet packet;
  packet.src = host_.address();
  packet.dst = key.remote;
  packet.src_port = key.local_port;
  packet.dst_port = key.remote_port;
  packet.transport = Transport::kTcp;
  packet.tcp_flags = flags;
  // Segments carry the connection's causal id even when sent from a
  // deferred callback (banner-window abort) where no context is ambient.
  if (const TcpConnection* conn = find(key)) packet.trace_id = conn->trace_id_;
  host_.fabric().send(std::move(packet));
}

void TcpStack::send_data(const ConnKey& key, util::Bytes data) {
  Packet packet;
  packet.src = host_.address();
  packet.dst = key.remote;
  packet.src_port = key.local_port;
  packet.dst_port = key.remote_port;
  packet.transport = Transport::kTcp;
  packet.tcp_flags = TcpFlags::kPsh | TcpFlags::kAck;
  packet.payload = std::move(data);
  if (const TcpConnection* conn = find(key)) packet.trace_id = conn->trace_id_;
  host_.fabric().send(std::move(packet));
}

void TcpStack::erase(const ConnKey& key) {
  pending_connects_.erase(key);
  conns_.erase(key);
}

void note_emulated_backlog_drop() { metrics().backlog_drops.inc(); }

std::size_t TcpStack::half_open_count() const {
  std::size_t n = 0;
  // ofh-lint: allow(unordered-iteration) — order-independent fold: counting matching states commutes, so iteration order cannot reach the result
  for (const auto& [key, conn] : conns_) {
    if (conn->state() == TcpConnection::State::kSynReceived) ++n;
  }
  return n;
}

}  // namespace ofh::net
