// Deterministic fault injection for the Fabric: seeded, schedulable chaos
// in the FoundationDB tradition. A FaultSchedule describes loss bursts
// (Gilbert-Elliott two-state model alongside the Fabric's uniform rate),
// latency spikes, link flaps, bidirectional CIDR partitions, packet
// duplication/reordering and host-level faults (crash/restart windows with
// connection state loss, ICMP-unreachable-style refusal windows).
//
// Determinism contract: every fault decision is a pure function of
// (seed, sim-time, per-fabric decision ordinal). Per-packet draws use a
// stateless splitmix64 hash keyed on the decision ordinal and a purpose
// tag, so one draw never perturbs another; the Gilbert-Elliott chain is
// driven by fixed sim-time slots whose transitions hash (seed, slot index).
// A replayed run — and every scan_threads value, since each scan shard owns
// a private Fabric with its own injector — sees the identical fault
// sequence. Every injected fault increments a fabric.faults_injected{kind=}
// counter and emits a kPacketFault / kHostFault trace event, so the
// attack-chain report can show *why* a probe died.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"
#include "util/ipv4.h"

namespace ofh::net {

// Carried in TraceEvent::a for kPacketFault events and used as the {kind=}
// label of fabric.faults_injected.
enum class FaultKind : std::uint8_t {
  kLossBurst,     // Gilbert-Elliott bad-state drop
  kLinkFlap,      // total loss window on a scope's links
  kPartition,     // bidirectional drop between two CIDR scopes
  kLatencySpike,  // extra delay window on a scope's links
  kDuplicate,     // packet delivered twice
  kReorder,       // packet delayed past its flow's stable latency
  kRefusal,       // ICMP-unreachable analogue: SYNs answered with RST
  kCrash,         // host power-loss window: connection state wiped
};
inline constexpr std::size_t kFaultKindCount = 8;
std::string_view fault_kind_name(FaultKind kind);

// Two-state Markov loss model (Gilbert-Elliott): the chain sits in a good
// or a bad (burst) state and flips per fixed sim-time slot, giving the
// bursty correlated loss real access links exhibit — which uniform loss
// cannot, and which retry/backoff policies must survive.
struct GilbertElliott {
  bool enabled = false;
  double p_enter = 0.002;  // per-slot good -> bad
  double p_exit = 0.05;    // per-slot bad -> good
  double loss_good = 0.0;  // drop probability while good
  double loss_bad = 0.6;   // drop probability while bursting
  sim::Duration slot = sim::msec(100);
};

// One scheduled fault window. `scope` selects the affected hosts (src or
// dst for flaps/spikes, dst for refusals, resident hosts for crashes);
// `peer` is the second side of a partition and unused otherwise.
struct FaultWindow {
  FaultKind kind = FaultKind::kLinkFlap;
  sim::Time start = 0;
  sim::Time end = 0;
  util::Cidr scope;
  util::Cidr peer;
  sim::Duration magnitude = 0;  // extra delay for kLatencySpike

  bool active_at(sim::Time now) const { return now >= start && now < end; }
};

// Knobs for FaultSchedule::chaos(): how many windows of each kind to strew
// across [start, end) inside the given host ranges.
struct ChaosOptions {
  sim::Time start = 0;
  sim::Time end = sim::days(7);
  std::vector<util::Cidr> ranges;  // host ranges faults pick victims from
  std::uint32_t link_flaps = 4;
  std::uint32_t latency_spikes = 4;
  std::uint32_t partitions = 2;
  std::uint32_t refusals = 3;
  std::uint32_t crashes = 2;
  sim::Duration mean_window = sim::minutes(30);
  sim::Duration spike_magnitude = sim::msec(250);
  double duplicate_rate = 0.002;
  double reorder_rate = 0.002;
  bool burst = true;  // enable the default Gilbert-Elliott chain
};

// A complete fault plan for one Fabric. Default-constructed = no faults;
// Fabric::set_fault_schedule treats empty() as "uninstall".
struct FaultSchedule {
  // Memoryless per-packet loss, decided by the injector so every drop is
  // counted and traced as a fault (kind kLossBurst, the uniform special
  // case of the burst model). Distinct from Fabric::set_loss_rate, which
  // models ambient weather outside any schedule.
  double uniform_loss = 0.0;
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  sim::Duration reorder_delay = sim::msec(150);
  GilbertElliott burst;
  std::vector<FaultWindow> windows;

  bool empty() const {
    return uniform_loss == 0.0 && duplicate_rate == 0.0 &&
           reorder_rate == 0.0 && !burst.enabled && windows.empty();
  }

  // Canned chaos: a seed-derived schedule with every fault kind
  // represented, used by the chaos_report example, ci.sh and faults_test.
  static FaultSchedule chaos(std::uint64_t seed, const ChaosOptions& options);
};

// What the injector tells Fabric::send to do with one packet. At most one
// terminal fate (drop or refuse); duplication and delays compose.
struct FaultDecision {
  bool drop = false;
  FaultKind drop_kind = FaultKind::kLossBurst;
  bool refuse = false;           // synthesize RST from dst (TCP SYN only)
  bool duplicate = false;
  sim::Duration spike_delay = 0;
  sim::Duration reorder_delay = 0;

  bool perturbed() const {
    return drop || refuse || duplicate || spike_delay > 0 || reorder_delay > 0;
  }
};

// Per-Fabric fault engine. Single-threaded like its fabric; the decision
// ordinal and the Gilbert-Elliott slot cursor are the only mutable state,
// both advanced deterministically by the packet stream.
class FaultInjector {
 public:
  FaultInjector(FaultSchedule schedule, std::uint64_t seed);

  // Decides the fate of one packet about to enter the latency model.
  FaultDecision decide(const Packet& packet, sim::Time now);

  // True while a kCrash window covering addr is active.
  bool host_down(util::Ipv4Addr addr, sim::Time now) const;

  const FaultSchedule& schedule() const { return schedule_; }

  // Per-kind injected-fault counts for this fabric instance (the fleet-wide
  // totals live in the obs registry).
  std::uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t injected_total() const;
  void count(FaultKind kind) {
    ++injected_[static_cast<std::size_t>(kind)];
  }

 private:
  // Stateless unit draw in [0, 1): hash of (seed, ordinal, purpose).
  double draw(std::uint64_t ordinal, std::uint64_t purpose) const;
  // Advances the Gilbert-Elliott chain to now's slot and returns the
  // current drop probability.
  double burst_loss_probability(sim::Time now);

  FaultSchedule schedule_;
  std::uint64_t seed_;
  std::uint64_t ordinal_ = 0;
  std::uint64_t ge_slot_cursor_ = 0;
  bool ge_bad_ = false;
  std::array<std::uint64_t, kFaultKindCount> injected_{};
};

}  // namespace ofh::net
