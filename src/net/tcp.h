// TCP-lite endpoint: listeners, three-way handshake, byte-stream exchange,
// FIN/RST teardown and connect timeouts. No sequence numbers or retransmit —
// the event queue already delivers in order; loss is modelled at the fabric
// and surfaces as connect timeouts (see DESIGN.md "TCP-lite").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>

#include "net/packet.h"
#include "sim/time.h"
#include "util/bytes.h"
#include "util/ipv4.h"

namespace ofh::net {

class Host;
class TcpStack;

class TcpConnection {
 public:
  enum class State : std::uint8_t {
    kSynSent,
    kSynReceived,
    kEstablished,
    kClosed,
  };

  // Callbacks installed by the service/client that owns the session.
  std::function<void(TcpConnection&, std::span<const std::uint8_t>)> on_data;
  std::function<void(TcpConnection&)> on_close;

  void send(util::Bytes data);
  void send_text(std::string_view text) { send(util::to_bytes(text)); }
  void close();  // graceful FIN
  void abort();  // RST

  util::Ipv4Addr local_addr() const;
  util::Ipv4Addr remote_addr() const { return key_.remote; }
  std::uint16_t local_port() const { return key_.local_port; }
  std::uint16_t remote_port() const { return key_.remote_port; }
  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  sim::Time opened_at() const { return opened_at_; }
  // Causal id of the probe that opened this connection (obs/trace.h);
  // adopted from the ambient context at active open or from the SYN packet
  // at passive open, and stamped onto every segment the connection sends —
  // including deferred sends (banner-window aborts) that run outside the
  // originating context.
  std::uint64_t trace_id() const { return trace_id_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  friend class TcpStack;
  TcpConnection(TcpStack& stack, ConnKey key, State state)
      : key_(key), stack_(stack), state_(state) {}

  ConnKey key_;
  TcpStack& stack_;
  State state_;
  // Distinguishes successive connections reusing one key: deferred events
  // (connect timeouts) capture (key, generation) and stand down when the
  // key now names a newer incarnation.
  std::uint64_t generation_ = 0;
  std::uint64_t trace_id_ = 0;
  sim::Time opened_at_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

// How an active open resolved. Delivered alongside the connection pointer
// by connect_ex so callers can tell an answered refusal (RST: the host is
// up, the port is closed or fault-refused) from a silent timeout (SYN or
// SYN|ACK lost) — the distinction retry policies key on: refusals are
// answers and are never retried, timeouts may be.
enum class ConnectOutcome : std::uint8_t {
  kEstablished,
  kRefused,
  kTimeout,
};

class TcpStack {
 public:
  // Shared with the fabric's SYN-flood emulation (net/fabric.cpp), which
  // mirrors this stack's passive-open behaviour for unmaterialized victims:
  // the two must agree on the backlog ceiling and the half-open GC horizon
  // or emulated and real floods would diverge.
  static constexpr std::size_t kDefaultBacklogLimit = 4096;
  static constexpr sim::Duration kHalfOpenGcDelay = sim::seconds(30);

  // Invoked for each accepted inbound connection; install on_data/on_close
  // inside the handler.
  using AcceptHandler = std::function<void(TcpConnection&)>;
  // Invoked with the established connection, or nullptr on timeout/refusal.
  using ConnectHandler = std::function<void(TcpConnection*)>;
  // connect_ex variant carrying the outcome (nullptr iff not kEstablished).
  using ConnectOutcomeHandler =
      std::function<void(TcpConnection*, ConnectOutcome)>;

  explicit TcpStack(Host& host) : host_(host) {}
  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  void listen(std::uint16_t port, AcceptHandler handler) {
    listeners_[port] = std::move(handler);
  }
  void close_listener(std::uint16_t port) { listeners_.erase(port); }
  bool listening(std::uint16_t port) const {
    return listeners_.count(port) != 0;
  }

  void connect(util::Ipv4Addr dst, std::uint16_t dst_port,
               ConnectHandler handler,
               sim::Duration timeout = sim::seconds(5));
  void connect_ex(util::Ipv4Addr dst, std::uint16_t dst_port,
                  ConnectOutcomeHandler handler,
                  sim::Duration timeout = sim::seconds(5));

  // Packet ingress from the owning host.
  void handle(const Packet& packet);

  // Finds a live connection by key; nullptr if torn down. Deferred callbacks
  // must re-resolve connections through this instead of holding references.
  TcpConnection* lookup(const ConnKey& key) { return find(key); }

  std::size_t open_connections() const { return conns_.size(); }

  // Limits half-open (SYN_RCVD) server-side entries, making SYN floods
  // observable as accept-queue exhaustion.
  void set_backlog_limit(std::size_t limit) { backlog_limit_ = limit; }

  // Power-loss semantics for host crash faults (net/faults.h kCrash):
  // every connection and pending active open vanishes without FIN/RST or
  // callbacks — the crashed software's completion handlers are gone with
  // it. Listeners survive: restarted firmware brings its services back up.
  // Deferred timers holding (key, generation) find nothing and stand down.
  void reset_connections() {
    pending_connects_.clear();
    conns_.clear();
  }

  // Test hook: pins the next ephemeral port so port-reuse scenarios (the
  // (key, generation) timeout regression) can be forced deterministically.
  void set_next_ephemeral(std::uint16_t port) { next_ephemeral_ = port; }

  Host& host() { return host_; }

 private:
  friend class TcpConnection;

  void send_flags(const ConnKey& key, std::uint8_t flags);
  void send_data(const ConnKey& key, util::Bytes data);
  void erase(const ConnKey& key);
  TcpConnection* find(const ConnKey& key) {
    const auto it = conns_.find(key);
    return it == conns_.end() ? nullptr : it->second.get();
  }
  std::size_t half_open_count() const;

  Host& host_;
  std::unordered_map<std::uint16_t, AcceptHandler> listeners_;
  std::unordered_map<ConnKey, std::unique_ptr<TcpConnection>, ConnKeyHash>
      conns_;
  std::unordered_map<ConnKey, ConnectOutcomeHandler, ConnKeyHash>
      pending_connects_;
  std::uint64_t next_generation_ = 0;
  std::uint16_t next_ephemeral_ = 32768;
  std::size_t backlog_limit_ = kDefaultBacklogLimit;
};

// Counts a backlog refusal against the same tcp.backlog_drops counter the
// real stack increments, for the fabric's SYN-flood emulation: when the
// flood victim is never materialized there is no TcpStack to do it, but the
// metric must not depend on whether the victim happened to be lazy.
void note_emulated_backlog_drop();

}  // namespace ofh::net
