// Shared length-prefixed wire framing and the typed-error envelope, built
// on util::ByteReader/ByteWriter. This is the one codec both real wires in
// the system speak: the status endpoint (core/status_service.h) and the
// distributed worker protocol (dist/protocol.h) — factored out so a frame
// parsed by either side goes through exactly one bounds-checked path.
//
// Grammar (all integers big-endian):
//
//   frame := u32 body_length | body
//   error := u8 0x7f | u8 code | str16 message
//
// Request/response tag conventions layer on top: a request body starts with
// a u8 tag, its response echoes the tag with kWireResponseBit set, and the
// reserved kWireErrorTag marks the typed-error envelope above. Error codes
// are shared across protocols so clients need one decoder:
//   1 unknown-tag, 2 oversized, 3 malformed, 4 unavailable, 5 forbidden.
//
// Streams are consumed incrementally with peek_frame()/consume_frame(): a
// connection buffers raw bytes, peeks for a complete frame, handles it, and
// consumes it. A frame whose declared length exceeds the caller's cap is
// reported as kOversized without ever allocating for it — the declared
// length of a hostile frame cannot be trusted enough to resynchronize, so
// servers answer with the typed error and hang up (status endpoint
// behavior, pinned by scripts/check_status_proto.py).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace ofh::net {

enum class WireError : std::uint8_t {
  kUnknownTag = 1,
  kOversized = 2,
  kMalformed = 3,
  kUnavailable = 4,
  kForbidden = 5,
};
std::string_view wire_error_name(WireError code);

inline constexpr std::uint8_t kWireResponseBit = 0x80;
inline constexpr std::uint8_t kWireErrorTag = 0x7f;

// The typed-error envelope body: u8 0x7f | u8 code | str16 message.
util::Bytes wire_error_body(WireError code, std::string_view message);

// Wraps a body in its u32 length prefix.
util::Bytes wire_frame(std::span<const std::uint8_t> body);

struct WireErrorInfo {
  WireError code = WireError::kMalformed;
  std::string message;
};
// Decodes a body as the typed-error envelope. Returns nullopt when the body
// is anything else (wrong tag, truncated, trailing bytes) — callers treat
// that as "not an error frame", never as a parse success.
std::optional<WireErrorInfo> parse_wire_error(
    std::span<const std::uint8_t> body);

enum class FrameStatus : std::uint8_t {
  kNeedMore,   // header or body incomplete; read more bytes
  kFrame,      // `body` views one complete frame inside the buffer
  kOversized,  // declared length exceeds the caller's cap; drop the peer
};

struct FrameView {
  FrameStatus status = FrameStatus::kNeedMore;
  std::uint32_t declared = 0;          // header length field (valid unless
                                       // fewer than 4 bytes are buffered)
  std::span<const std::uint8_t> body;  // valid only when status == kFrame
};

// Peeks at the front of a connection's input buffer. Never consumes; call
// consume_frame(buffer, view.body.size()) after handling a kFrame result.
FrameView peek_frame(const util::Bytes& buffer, std::size_t max_body);

// Drops one frame (4-byte header + body_size bytes) from the buffer front.
void consume_frame(util::Bytes& buffer, std::size_t body_size);

}  // namespace ofh::net
