#include "net/faults.h"

#include <algorithm>

#include "util/rng.h"

namespace ofh::net {

namespace {

// Purpose tags decorrelate the per-packet draws: each (ordinal, purpose)
// pair hashes to an independent uniform, so adding a new check never
// shifts an existing one's stream.
enum Purpose : std::uint64_t {
  kDrawBurst = 1,
  kDrawDuplicate = 2,
  kDrawReorder = 3,
  kDrawUniform = 4,
};

double unit_from_bits(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLossBurst: return "loss_burst";
    case FaultKind::kLinkFlap: return "link_flap";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLatencySpike: return "latency_spike";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kRefusal: return "refusal";
    case FaultKind::kCrash: return "crash";
  }
  return "unknown";
}

FaultSchedule FaultSchedule::chaos(std::uint64_t seed,
                                   const ChaosOptions& options) {
  FaultSchedule schedule;
  schedule.duplicate_rate = options.duplicate_rate;
  schedule.reorder_rate = options.reorder_rate;
  schedule.burst.enabled = options.burst;
  if (options.ranges.empty() || options.end <= options.start) return schedule;

  util::Rng rng = util::Rng(seed).fork("chaos");
  const auto span = options.end - options.start;

  // A window's victims are a narrow sub-prefix (/24 at the widest) of one
  // of the host ranges, so a crash or flap degrades the study instead of
  // blacking it out.
  const auto sub_scope = [&rng, &options] {
    const util::Cidr& range = rng.pick(options.ranges);
    const int prefix_len = std::max(range.prefix_len(), 24);
    const std::uint64_t subnets = range.size() >> (32 - prefix_len);
    const std::uint32_t base =
        range.base().value() +
        static_cast<std::uint32_t>(rng.below(std::max<std::uint64_t>(
            1, subnets))) *
            (1u << (32 - prefix_len));
    return util::Cidr(util::Ipv4Addr(base), prefix_len);
  };
  const auto make_window = [&](FaultKind kind) {
    FaultWindow window;
    window.kind = kind;
    window.start = options.start + rng.below(span);
    const auto mean = static_cast<double>(options.mean_window);
    auto length = static_cast<sim::Duration>(rng.exponential(mean));
    length = std::clamp<sim::Duration>(length, sim::seconds(30), span / 4);
    window.end = std::min(options.end, window.start + length);
    window.scope = sub_scope();
    return window;
  };

  for (std::uint32_t i = 0; i < options.link_flaps; ++i) {
    schedule.windows.push_back(make_window(FaultKind::kLinkFlap));
  }
  for (std::uint32_t i = 0; i < options.latency_spikes; ++i) {
    FaultWindow window = make_window(FaultKind::kLatencySpike);
    window.magnitude = options.spike_magnitude;
    schedule.windows.push_back(window);
  }
  for (std::uint32_t i = 0; i < options.partitions; ++i) {
    FaultWindow window = make_window(FaultKind::kPartition);
    window.peer = sub_scope();
    schedule.windows.push_back(window);
  }
  for (std::uint32_t i = 0; i < options.refusals; ++i) {
    schedule.windows.push_back(make_window(FaultKind::kRefusal));
  }
  for (std::uint32_t i = 0; i < options.crashes; ++i) {
    schedule.windows.push_back(make_window(FaultKind::kCrash));
  }

  // (start, kind, scope) order so the schedule itself — not the generator's
  // insertion order — defines the replayed sequence.
  std::sort(schedule.windows.begin(), schedule.windows.end(),
            [](const FaultWindow& lhs, const FaultWindow& rhs) {
              if (lhs.start != rhs.start) return lhs.start < rhs.start;
              if (lhs.kind != rhs.kind) return lhs.kind < rhs.kind;
              return lhs.scope.base().value() < rhs.scope.base().value();
            });
  return schedule;
}

FaultInjector::FaultInjector(FaultSchedule schedule, std::uint64_t seed)
    : schedule_(std::move(schedule)),
      seed_(util::splitmix64(seed ^ util::fnv1a("fault-injector"))) {}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto count : injected_) total += count;
  return total;
}

double FaultInjector::draw(std::uint64_t ordinal,
                           std::uint64_t purpose) const {
  return unit_from_bits(util::splitmix64(
      seed_ ^ (ordinal * 0x9e3779b97f4a7c15ULL) ^ (purpose << 56)));
}

double FaultInjector::burst_loss_probability(sim::Time now) {
  const GilbertElliott& ge = schedule_.burst;
  const std::uint64_t slot = ge.slot == 0 ? 0 : now / ge.slot;
  // Transitions are decided per slot from (seed, slot index) alone, so the
  // chain's state at any sim-time is independent of how many packets — or
  // which shard's packets — asked before.
  while (ge_slot_cursor_ < slot) {
    const double u = unit_from_bits(
        util::splitmix64(seed_ ^ util::fnv1a("ge-slot") ^ ge_slot_cursor_));
    ge_bad_ = ge_bad_ ? u >= ge.p_exit : u < ge.p_enter;
    ++ge_slot_cursor_;
  }
  return ge_bad_ ? ge.loss_bad : ge.loss_good;
}

bool FaultInjector::host_down(util::Ipv4Addr addr, sim::Time now) const {
  for (const auto& window : schedule_.windows) {
    if (window.kind == FaultKind::kCrash && window.active_at(now) &&
        window.scope.contains(addr)) {
      return true;
    }
  }
  return false;
}

FaultDecision FaultInjector::decide(const Packet& packet, sim::Time now) {
  FaultDecision decision;
  const std::uint64_t ordinal = ++ordinal_;

  // Terminal fates first, most specific cause wins: a packet to a crashed
  // host is "crash", not whatever burst state the link happens to be in.
  if (host_down(packet.dst, now) || host_down(packet.src, now)) {
    decision.drop = true;
    decision.drop_kind = FaultKind::kCrash;
    return decision;
  }
  for (const auto& window : schedule_.windows) {
    if (!window.active_at(now)) continue;
    switch (window.kind) {
      case FaultKind::kLinkFlap:
        if (window.scope.contains(packet.src) ||
            window.scope.contains(packet.dst)) {
          decision.drop = true;
          decision.drop_kind = FaultKind::kLinkFlap;
          return decision;
        }
        break;
      case FaultKind::kPartition:
        if ((window.scope.contains(packet.src) &&
             window.peer.contains(packet.dst)) ||
            (window.scope.contains(packet.dst) &&
             window.peer.contains(packet.src))) {
          decision.drop = true;
          decision.drop_kind = FaultKind::kPartition;
          return decision;
        }
        break;
      case FaultKind::kRefusal:
        if (window.scope.contains(packet.dst)) {
          // The ICMP-unreachable analogue: a TCP SYN is answered with an
          // RST so the prober learns "refused" instead of burning its
          // timeout; anything else to the scope is dropped.
          if (packet.transport == Transport::kTcp && packet.is_syn_only()) {
            decision.refuse = true;
          } else {
            decision.drop = true;
            decision.drop_kind = FaultKind::kRefusal;
          }
          return decision;
        }
        break;
      case FaultKind::kLatencySpike:
        if (window.scope.contains(packet.src) ||
            window.scope.contains(packet.dst)) {
          decision.spike_delay += window.magnitude;
        }
        break;
      default:
        break;  // kCrash handled above; rate faults have no windows
    }
  }

  // Rate losses share the kLossBurst kind: uniform loss is the memoryless
  // special case of the burst model.
  if (schedule_.uniform_loss > 0 &&
      draw(ordinal, kDrawUniform) < schedule_.uniform_loss) {
    decision.drop = true;
    decision.drop_kind = FaultKind::kLossBurst;
    decision.spike_delay = 0;
    return decision;
  }
  if (schedule_.burst.enabled) {
    const double loss = burst_loss_probability(now);
    if (loss > 0 && draw(ordinal, kDrawBurst) < loss) {
      decision.drop = true;
      decision.drop_kind = FaultKind::kLossBurst;
      decision.spike_delay = 0;
      return decision;
    }
  }

  // Duplicated copies are flagged fault_copy and never re-duplicated, so
  // one send can at most double.
  if (schedule_.duplicate_rate > 0 && !packet.fault_copy &&
      draw(ordinal, kDrawDuplicate) < schedule_.duplicate_rate) {
    decision.duplicate = true;
  }
  if (schedule_.reorder_rate > 0 &&
      draw(ordinal, kDrawReorder) < schedule_.reorder_rate) {
    decision.reorder_delay = schedule_.reorder_delay;
  }
  return decision;
}

}  // namespace ofh::net
