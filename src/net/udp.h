// UDP endpoint: bind handlers per port, fire-and-forget datagrams. Unbound
// destination ports are silent (the simulation omits ICMP unreachable, which
// matches how UDP scanners must treat no-response).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/packet.h"
#include "util/bytes.h"
#include "util/ipv4.h"

namespace ofh::net {

class Host;

struct Datagram {
  util::Ipv4Addr src;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  const util::Bytes& payload;
  bool spoofed_src = false;
};

class UdpStack {
 public:
  using Handler = std::function<void(const Datagram&)>;

  explicit UdpStack(Host& host) : host_(host) {}
  UdpStack(const UdpStack&) = delete;
  UdpStack& operator=(const UdpStack&) = delete;

  void bind(std::uint16_t port, Handler handler) {
    handlers_[port] = std::move(handler);
  }
  void unbind(std::uint16_t port) { handlers_.erase(port); }
  bool bound(std::uint16_t port) const { return handlers_.count(port) != 0; }

  // Sends a datagram. src_port 0 allocates an ephemeral port. spoof_src, when
  // set, stamps a different source address (reflection attacks).
  void send(util::Ipv4Addr dst, std::uint16_t dst_port, util::Bytes payload,
            std::uint16_t src_port = 0);
  void send_spoofed(util::Ipv4Addr spoofed_src, util::Ipv4Addr dst,
                    std::uint16_t dst_port, util::Bytes payload,
                    std::uint16_t src_port);

  void handle(const Packet& packet);

 private:
  Host& host_;
  std::unordered_map<std::uint16_t, Handler> handlers_;
  std::uint16_t next_ephemeral_ = 40000;
};

}  // namespace ofh::net
