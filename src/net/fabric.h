// The Internet fabric: routes packets between attached hosts, applies a
// latency/loss model, feeds darknet ranges to sinks (network telescopes) and
// lets taps observe all traffic (pcap-style capture).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/faults.h"
#include "net/packet.h"
#include "sim/simulation.h"
#include "util/ipv4.h"
#include "util/rng.h"

namespace ofh::net {

class Host;

// Observes packets. Telescopes and capture tools implement this.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void observe(const Packet& packet, sim::Time when) = 0;
};

// Owns addresses without keeping a live Host per address. The population
// registers itself as the fabric's lazy source so millions of hosts exist
// as packed columns; a real Host is materialized only when a packet would
// actually change its state. classify() must be a pure function of the
// packet and the source's immutable columns — it is consulted at delivery
// time and must answer exactly what the materialized host's stacks would do.
class LazyHostSource {
 public:
  // What delivering this packet to the (unmaterialized) owner would do.
  enum class Verdict : std::uint8_t {
    kNotOwned,      // address is not ours: normal drop path applies
    kConsume,       // delivered, no reply, no state change (e.g. stray ACK)
    kReset,         // delivered; a closed TCP port answers the SYN with RST
    kMaterialize,   // packet reaches a bound service: build the real Host
  };

  virtual ~LazyHostSource() = default;
  virtual Verdict classify(const Packet& packet) const = 0;
  // Builds, attaches and returns the Host for an owned address. Only called
  // after classify() returned kMaterialize for a packet to that address.
  virtual Host* materialize(util::Ipv4Addr addr) = 0;
};

// One packet of a flow batch: a send scheduled for `when`. Fabric::send_flow
// takes these in bulk so floods and background radiation skip per-packet
// event-queue traffic.
struct FlowPacket {
  Packet packet;
  sim::Time when = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulation& sim, std::uint64_t seed)
      : sim_(sim), seed_(seed), rng_(util::Rng(seed).fork("fabric")) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::Simulation& sim() { return sim_; }

  // Host registration. Hosts call these from attach()/detach().
  void register_host(Host& host);
  void unregister_host(Host& host);
  Host* host_at(util::Ipv4Addr addr) const {
    const auto it = hosts_.find(addr.value());
    return it == hosts_.end() ? nullptr : it->second;
  }
  std::size_t host_count() const { return hosts_.size(); }

  // A darknet range delivers to a sink instead of hosts (network telescope).
  void add_darknet(util::Cidr range, PacketSink& sink) {
    darknets_.push_back({range, &sink});
  }

  // Taps observe every packet accepted by the fabric.
  void add_tap(PacketSink& tap) { taps_.push_back(&tap); }

  // Installs (or clears, with nullptr) the lazy host source. Last one wins;
  // the population installs itself on attach_all and clears on detach_all.
  void set_lazy_source(LazyHostSource* source) { lazy_source_ = source; }
  // Clears only if `source` is still the installed one (a later population
  // may have replaced it).
  void clear_lazy_source(const LazyHostSource* source) {
    if (lazy_source_ == source) lazy_source_ = nullptr;
  }
  LazyHostSource* lazy_source() const { return lazy_source_; }

  // Injects a packet; delivery is scheduled after the latency model.
  void send(Packet packet);

  // Sends a batch of scheduled packets. Semantically identical to
  //   for (fp : batch) sim.at(fp.when, [fp]{ send(fp.packet); })
  // (with when <= now sent synchronously, in input order), but packets bound
  // for a darknet range on a clean fabric (no loss, no fault injector) are
  // resolved inline: send-side and delivery-side accounting run in event-
  // queue order without ever touching the simulation heap. Counters, taps,
  // sink observations and traces carry the same timestamps and per-packet
  // order the event path would produce; only the trace-ring interleaving of
  // independent send/deliver records can differ (not golden-pinned). The
  // fast path requires taps and sinks to be independent observers.
  void send_flow(std::vector<FlowPacket> batch);

  // Sends a SYN flood (same victim, same port, SYN-only TCP) now. When the
  // victim is owned by the lazy source but not materialized, the victim's
  // TCP-lite handshake response is emulated inline — per-SYN SYN|ACK or RST
  // with a virtual half-open ledger standing in for real connection state —
  // so a 2500-packet flood costs zero heap events and never materializes
  // the victim. Falls back to per-packet send() whenever the emulation
  // could diverge (injector or loss active, victim registered, mixed
  // destinations, non-SYN packets).
  void send_flood(std::vector<Packet> packets);

  // Latency/loss configuration.
  void set_latency(sim::Duration base, sim::Duration jitter) {
    latency_base_ = base;
    latency_jitter_ = jitter;
  }
  // Loss is a probability; anything outside [0, 1] is a caller bug. Debug
  // builds assert, release builds clamp (NaN maps to 0) instead of feeding
  // rng_.chance() a nonsense threshold.
  void set_loss_rate(double rate) {
    assert(rate >= 0.0 && rate <= 1.0 &&
           "Fabric loss rate must be within [0, 1]");
    if (!(rate >= 0.0)) rate = 0.0;  // negative or NaN
    if (rate > 1.0) rate = 1.0;
    loss_rate_ = rate;
  }
  double loss_rate() const { return loss_rate_; }

  // Installs a seeded fault schedule (net/faults.h): an injector is built
  // from (schedule, this fabric's construction seed), the schedule's
  // uniform_loss is applied, and one sim event per crash window boundary is
  // scheduled to wipe/restore the affected hosts' connection state. An
  // empty schedule uninstalls the injector; the no-schedule hot path is a
  // single null check (bench/perf_sim BM_FabricSend).
  void set_fault_schedule(const FaultSchedule& schedule);
  const FaultInjector* fault_injector() const { return injector_.get(); }

  // Per-instance accounting. The fleet-wide totals (summed over every
  // fabric, including the parallel scan layer's private replicas) live in
  // the obs registry under fabric.packets_*; conservation holds exactly:
  // sent == delivered + dropped + faulted + inflight (tests/obs_test.cpp,
  // tests/faults_test.cpp).
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_delivered() const { return packets_delivered_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::uint64_t packets_faulted() const { return packets_faulted_; }

 private:
  sim::Duration sample_latency(const Packet& packet) const;
  void deliver_packet(Packet packet, sim::Duration extra_delay);
  void apply_crash_window(const FaultWindow& window, bool restart);
  // Send-side accounting exactly as send() performs it (counters, inflight,
  // kPacketSend trace, tap observation) stamped at `when`.
  void note_sent(const Packet& packet, sim::Time when);
  // Delivery-side accounting exactly as the delivery event performs it.
  void note_delivered(const Packet& packet, sim::Duration delay,
                      sim::Time when);
  void note_dropped(const Packet& packet, sim::Time when);
  PacketSink* sink_for(util::Ipv4Addr addr) const {
    for (const auto& darknet : darknets_) {
      if (darknet.range.contains(addr)) return darknet.sink;
    }
    return nullptr;
  }

  sim::Simulation& sim_;
  std::uint64_t seed_;
  util::Rng rng_;
  std::unique_ptr<FaultInjector> injector_;
  std::unordered_map<std::uint32_t, Host*> hosts_;
  struct Darknet {
    util::Cidr range;
    PacketSink* sink;
  };
  std::vector<Darknet> darknets_;
  std::vector<PacketSink*> taps_;
  LazyHostSource* lazy_source_ = nullptr;
  // Virtual half-open connections per emulated flood victim: (connection
  // key, GC deadline) pairs mirroring the kSynReceived entries a real
  // TcpStack would hold, so overlapping emulated floods see each other's
  // backlog pressure exactly as materialized stacks would.
  struct VirtualHalfOpen {
    std::uint64_t key;  // (src << 16) | src_port
    sim::Time gc;       // entry silently expires at this time
  };
  std::unordered_map<std::uint32_t, std::vector<VirtualHalfOpen>>
      virtual_half_open_;
  sim::Duration latency_base_ = sim::msec(20);
  sim::Duration latency_jitter_ = sim::msec(10);
  double loss_rate_ = 0.0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_faulted_ = 0;
};

}  // namespace ofh::net
