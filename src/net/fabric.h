// The Internet fabric: routes packets between attached hosts, applies a
// latency/loss model, feeds darknet ranges to sinks (network telescopes) and
// lets taps observe all traffic (pcap-style capture).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/faults.h"
#include "net/packet.h"
#include "sim/simulation.h"
#include "util/ipv4.h"
#include "util/rng.h"

namespace ofh::net {

class Host;

// Observes packets. Telescopes and capture tools implement this.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void observe(const Packet& packet, sim::Time when) = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulation& sim, std::uint64_t seed)
      : sim_(sim), seed_(seed), rng_(util::Rng(seed).fork("fabric")) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::Simulation& sim() { return sim_; }

  // Host registration. Hosts call these from attach()/detach().
  void register_host(Host& host);
  void unregister_host(Host& host);
  Host* host_at(util::Ipv4Addr addr) const {
    const auto it = hosts_.find(addr.value());
    return it == hosts_.end() ? nullptr : it->second;
  }
  std::size_t host_count() const { return hosts_.size(); }

  // A darknet range delivers to a sink instead of hosts (network telescope).
  void add_darknet(util::Cidr range, PacketSink& sink) {
    darknets_.push_back({range, &sink});
  }

  // Taps observe every packet accepted by the fabric.
  void add_tap(PacketSink& tap) { taps_.push_back(&tap); }

  // Injects a packet; delivery is scheduled after the latency model.
  void send(Packet packet);

  // Latency/loss configuration.
  void set_latency(sim::Duration base, sim::Duration jitter) {
    latency_base_ = base;
    latency_jitter_ = jitter;
  }
  // Loss is a probability; anything outside [0, 1] is a caller bug. Debug
  // builds assert, release builds clamp (NaN maps to 0) instead of feeding
  // rng_.chance() a nonsense threshold.
  void set_loss_rate(double rate) {
    assert(rate >= 0.0 && rate <= 1.0 &&
           "Fabric loss rate must be within [0, 1]");
    if (!(rate >= 0.0)) rate = 0.0;  // negative or NaN
    if (rate > 1.0) rate = 1.0;
    loss_rate_ = rate;
  }
  double loss_rate() const { return loss_rate_; }

  // Installs a seeded fault schedule (net/faults.h): an injector is built
  // from (schedule, this fabric's construction seed), the schedule's
  // uniform_loss is applied, and one sim event per crash window boundary is
  // scheduled to wipe/restore the affected hosts' connection state. An
  // empty schedule uninstalls the injector; the no-schedule hot path is a
  // single null check (bench/perf_sim BM_FabricSend).
  void set_fault_schedule(const FaultSchedule& schedule);
  const FaultInjector* fault_injector() const { return injector_.get(); }

  // Per-instance accounting. The fleet-wide totals (summed over every
  // fabric, including the parallel scan layer's private replicas) live in
  // the obs registry under fabric.packets_*; conservation holds exactly:
  // sent == delivered + dropped + faulted + inflight (tests/obs_test.cpp,
  // tests/faults_test.cpp).
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_delivered() const { return packets_delivered_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::uint64_t packets_faulted() const { return packets_faulted_; }

 private:
  sim::Duration sample_latency(const Packet& packet) const;
  void deliver_packet(Packet packet, sim::Duration extra_delay);
  void apply_crash_window(const FaultWindow& window, bool restart);

  sim::Simulation& sim_;
  std::uint64_t seed_;
  util::Rng rng_;
  std::unique_ptr<FaultInjector> injector_;
  std::unordered_map<std::uint32_t, Host*> hosts_;
  struct Darknet {
    util::Cidr range;
    PacketSink* sink;
  };
  std::vector<Darknet> darknets_;
  std::vector<PacketSink*> taps_;
  sim::Duration latency_base_ = sim::msec(20);
  sim::Duration latency_jitter_ = sim::msec(10);
  double loss_rate_ = 0.0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_faulted_ = 0;
};

}  // namespace ofh::net
