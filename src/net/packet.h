// Simulated network packets. The model is intentionally "TCP-lite": enough
// header state for what the reproduction measures — SYN-scanning, banner
// grabs, RST-on-closed-port, spoofed sources and telescope FlowTuple fields —
// without sequence numbers or retransmission.
#pragma once

#include <cstdint>
#include <functional>

#include "util/bytes.h"
#include "util/ipv4.h"

namespace ofh::net {

enum class Transport : std::uint8_t { kTcp, kUdp };

// TCP flag bits (subset used by the simulation).
struct TcpFlags {
  static constexpr std::uint8_t kSyn = 0x01;
  static constexpr std::uint8_t kAck = 0x02;
  static constexpr std::uint8_t kFin = 0x04;
  static constexpr std::uint8_t kRst = 0x08;
  static constexpr std::uint8_t kPsh = 0x10;
};

struct Packet {
  util::Ipv4Addr src;
  util::Ipv4Addr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Transport transport = Transport::kTcp;
  std::uint8_t tcp_flags = 0;
  std::uint8_t ttl = 64;
  // Metadata mirrored into telescope FlowTuples (the CAIDA dataset carries
  // is_spoofed / is_masscan annotations).
  bool spoofed_src = false;
  bool from_masscan = false;
  // Causal id minted by the originating probe (obs/trace.h); 0 means
  // unattributed. Adopted from the ambient TraceContext at Fabric::send and
  // re-published while the receiving host handles the packet, so responses
  // and follow-on traffic inherit the originating probe's id.
  std::uint64_t trace_id = 0;
  // Set on copies created by the fault injector's duplication fault so a
  // duplicate is never duplicated again (net/faults.h).
  bool fault_copy = false;
  util::Bytes payload;

  bool has_flag(std::uint8_t flag) const { return (tcp_flags & flag) != 0; }
  bool is_syn_only() const { return tcp_flags == TcpFlags::kSyn; }

  // On-wire size estimate used for FlowTuple byte counters.
  std::size_t wire_size() const {
    return 40 + payload.size();  // IPv4 + transport headers, no options
  }
};

// Identifies a connection from one endpoint's point of view.
struct ConnKey {
  std::uint16_t local_port = 0;
  util::Ipv4Addr remote;
  std::uint16_t remote_port = 0;

  auto operator<=>(const ConnKey&) const = default;
};

struct ConnKeyHash {
  std::size_t operator()(const ConnKey& key) const {
    const std::uint64_t mixed = (std::uint64_t{key.local_port} << 48) ^
                                (std::uint64_t{key.remote_port} << 32) ^
                                key.remote.value();
    return std::hash<std::uint64_t>{}(mixed * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace ofh::net
