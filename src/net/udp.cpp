#include "net/udp.h"

#include "net/fabric.h"
#include "net/host.h"

namespace ofh::net {

void UdpStack::send(util::Ipv4Addr dst, std::uint16_t dst_port,
                    util::Bytes payload, std::uint16_t src_port) {
  if (src_port == 0) {
    src_port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ == 0xffff
                          ? static_cast<std::uint16_t>(40000)
                          : static_cast<std::uint16_t>(next_ephemeral_ + 1);
  }
  Packet packet;
  packet.src = host_.address();
  packet.dst = dst;
  packet.src_port = src_port;
  packet.dst_port = dst_port;
  packet.transport = Transport::kUdp;
  packet.payload = std::move(payload);
  host_.fabric().send(std::move(packet));
}

void UdpStack::send_spoofed(util::Ipv4Addr spoofed_src, util::Ipv4Addr dst,
                            std::uint16_t dst_port, util::Bytes payload,
                            std::uint16_t src_port) {
  Packet packet;
  packet.src = spoofed_src;
  packet.dst = dst;
  packet.src_port = src_port;
  packet.dst_port = dst_port;
  packet.transport = Transport::kUdp;
  packet.spoofed_src = true;
  packet.payload = std::move(payload);
  host_.fabric().send(std::move(packet));
}

void UdpStack::handle(const Packet& packet) {
  const auto it = handlers_.find(packet.dst_port);
  if (it == handlers_.end() || !it->second) return;
  const Datagram datagram{packet.src, packet.src_port, packet.dst_port,
                          packet.payload, packet.spoofed_src};
  it->second(datagram);
}

}  // namespace ofh::net
