#include "net/wire.h"

namespace ofh::net {

std::string_view wire_error_name(WireError code) {
  switch (code) {
    case WireError::kUnknownTag:
      return "unknown-tag";
    case WireError::kOversized:
      return "oversized";
    case WireError::kMalformed:
      return "malformed";
    case WireError::kUnavailable:
      return "unavailable";
    case WireError::kForbidden:
      return "forbidden";
  }
  return "unknown";
}

util::Bytes wire_error_body(WireError code, std::string_view message) {
  util::ByteWriter writer;
  writer.u8(kWireErrorTag);
  writer.u8(static_cast<std::uint8_t>(code));
  writer.str16(message);
  return writer.take();
}

util::Bytes wire_frame(std::span<const std::uint8_t> body) {
  util::ByteWriter writer;
  writer.u32(static_cast<std::uint32_t>(body.size()));
  writer.raw(body);
  return writer.take();
}

std::optional<WireErrorInfo> parse_wire_error(
    std::span<const std::uint8_t> body) {
  util::ByteReader reader(body);
  const auto tag = reader.u8();
  if (!tag || *tag != kWireErrorTag) {
    return std::nullopt;
  }
  const auto code = reader.u8();
  const auto message = reader.str16();
  if (!code || !message || !reader.done()) {
    return std::nullopt;
  }
  if (*code < static_cast<std::uint8_t>(WireError::kUnknownTag) ||
      *code > static_cast<std::uint8_t>(WireError::kForbidden)) {
    return std::nullopt;
  }
  return WireErrorInfo{static_cast<WireError>(*code), std::string(*message)};
}

FrameView peek_frame(const util::Bytes& buffer, std::size_t max_body) {
  FrameView view;
  if (buffer.size() < 4) {
    return view;
  }
  util::ByteReader header(buffer);
  view.declared = *header.u32();
  if (view.declared > max_body) {
    view.status = FrameStatus::kOversized;
    return view;
  }
  if (buffer.size() < 4u + view.declared) {
    return view;
  }
  view.status = FrameStatus::kFrame;
  view.body = std::span<const std::uint8_t>(buffer).subspan(4, view.declared);
  return view;
}

void consume_frame(util::Bytes& buffer, std::size_t body_size) {
  const std::size_t total = 4u + body_size;
  buffer.erase(buffer.begin(),
               buffer.begin() + static_cast<std::ptrdiff_t>(
                                    std::min(total, buffer.size())));
}

}  // namespace ofh::net
