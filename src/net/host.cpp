#include "net/host.h"

#include "net/fabric.h"

namespace ofh::net {

void Host::attach(Fabric& fabric) {
  assert(fabric_ == nullptr);
  fabric_ = &fabric;
  fabric.register_host(*this);
  on_attached();
}

void Host::detach() {
  if (fabric_ == nullptr) return;
  on_detached();
  fabric_->unregister_host(*this);
  fabric_ = nullptr;
}

sim::Simulation& Host::sim() { return fabric().sim(); }

void Host::deliver(const Packet& packet) {
  if (ingress_filter_ && !ingress_filter_(packet)) return;  // firewalled
  switch (packet.transport) {
    case Transport::kTcp:
      tcp_->handle(packet);
      break;
    case Transport::kUdp:
      udp_->handle(packet);
      break;
  }
}

}  // namespace ofh::net
