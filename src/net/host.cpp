#include "net/host.h"

#include "net/fabric.h"
#include "obs/trace.h"

namespace ofh::net {

void Host::attach(Fabric& fabric) {
  assert(fabric_ == nullptr);
  fabric_ = &fabric;
  fabric.register_host(*this);
  on_attached();
}

void Host::detach() {
  if (fabric_ == nullptr) return;
  on_detached();
  fabric_->unregister_host(*this);
  fabric_ = nullptr;
}

sim::Simulation& Host::sim() { return fabric().sim(); }

void Host::deliver(const Packet& packet) {
  if (ingress_filter_ && !ingress_filter_(packet)) return;  // firewalled
  // Everything the host does in response — honeypot logging, replies sent
  // back through the fabric — inherits the packet's causal id.
  const obs::TraceContext trace_context(packet.trace_id);
  switch (packet.transport) {
    case Transport::kTcp:
      tcp_->handle(packet);
      break;
    case Transport::kUdp:
      udp_->handle(packet);
      break;
  }
}

}  // namespace ofh::net
