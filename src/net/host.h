// Base class for everything with an IP address: IoT devices, honeypots,
// scanners, attackers, dataset crawlers. Owns a TCP and a UDP stack and
// dispatches delivered packets to them.
#pragma once

#include <cassert>
#include <memory>

#include "net/packet.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "sim/simulation.h"
#include "util/ipv4.h"

namespace ofh::net {

class Fabric;

class Host {
 public:
  explicit Host(util::Ipv4Addr addr) : addr_(addr) {}
  virtual ~Host() {
    if (fabric_ != nullptr) detach();
  }
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  // Joins the fabric. Services should install listeners in on_attached().
  void attach(Fabric& fabric);
  void detach();
  bool attached() const { return fabric_ != nullptr; }

  util::Ipv4Addr address() const { return addr_; }
  Fabric& fabric() {
    assert(fabric_ != nullptr);
    return *fabric_;
  }
  sim::Simulation& sim();

  TcpStack& tcp() { return *tcp_; }
  UdpStack& udp() { return *udp_; }

  // Optional ingress firewall: return false to drop a packet before it
  // reaches the stacks. Networks use this to blocklist known scanner
  // ranges (the paper's motivation for scanning from a university host:
  // "some networks blocklist Shodan, Censys and other scanning services").
  using IngressFilter = std::function<bool(const Packet&)>;
  void set_ingress_filter(IngressFilter filter) {
    ingress_filter_ = std::move(filter);
  }

  void deliver(const Packet& packet);

  // Host-level fault (net/faults.h kCrash): the device loses power. All
  // TCP connection state — established sessions and pending active opens —
  // vanishes without FIN/RST or callbacks; TCP listeners and UDP bindings
  // survive, as restarted firmware brings its services back up. Invoked by
  // Fabric::apply_crash_window at crash-window start.
  void fault_crash() { tcp_->reset_connections(); }

 protected:
  virtual void on_attached() {}
  virtual void on_detached() {}

 private:
  util::Ipv4Addr addr_;
  Fabric* fabric_ = nullptr;
  IngressFilter ingress_filter_;
  std::unique_ptr<TcpStack> tcp_ = std::make_unique<TcpStack>(*this);
  std::unique_ptr<UdpStack> udp_ = std::make_unique<UdpStack>(*this);
};

}  // namespace ofh::net
