// Packet capture: a fabric tap that records traffic like the paper's
// tcpdump captures on the honeypot hosts (§5.1: "the network traffic is
// captured with tcpdump ... and the pcap files are further analyzed to
// determine the attack vectors"). Supports BPF-flavoured filtering by
// host/port/transport and bounded buffering.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "net/fabric.h"
#include "net/packet.h"

namespace ofh::net {

struct CaptureFilter {
  std::optional<util::Ipv4Addr> host;        // src or dst matches
  std::optional<std::uint16_t> port;         // src or dst port matches
  std::optional<Transport> transport;
  bool payload_only = false;                 // skip empty segments

  bool matches(const Packet& packet) const {
    if (host && packet.src != *host && packet.dst != *host) return false;
    if (port && packet.src_port != *port && packet.dst_port != *port) {
      return false;
    }
    if (transport && packet.transport != *transport) return false;
    if (payload_only && packet.payload.empty()) return false;
    return true;
  }
};

class PacketCapture : public PacketSink {
 public:
  struct Record {
    sim::Time when = 0;
    Packet packet;
  };

  explicit PacketCapture(CaptureFilter filter = {},
                         std::size_t max_packets = 1 << 20)
      : filter_(filter), max_packets_(max_packets) {}

  void attach(Fabric& fabric) { fabric.add_tap(*this); }

  void observe(const Packet& packet, sim::Time when) override {
    ++seen_;
    if (!filter_.matches(packet)) return;
    if (records_.size() >= max_packets_) {
      records_.pop_front();  // ring-buffer semantics
      ++dropped_;
    }
    records_.push_back({when, packet});
  }

  const std::deque<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  std::uint64_t seen() const { return seen_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear() { records_.clear(); }

  // Packets matching an additional predicate (post-capture query).
  std::vector<const Record*> select(
      const std::function<bool(const Record&)>& predicate) const {
    std::vector<const Record*> out;
    for (const auto& record : records_) {
      if (predicate(record)) out.push_back(&record);
    }
    return out;
  }

 private:
  CaptureFilter filter_;
  std::size_t max_packets_;
  std::deque<Record> records_;
  std::uint64_t seen_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ofh::net
