#include "net/fabric.h"

#include "net/host.h"

namespace ofh::net {

void Fabric::register_host(Host& host) {
  hosts_[host.address().value()] = &host;
}

void Fabric::unregister_host(Host& host) {
  const auto it = hosts_.find(host.address().value());
  if (it != hosts_.end() && it->second == &host) hosts_.erase(it);
}

sim::Duration Fabric::sample_latency(const Packet& packet) const {
  if (latency_jitter_ == 0) return latency_base_;
  // Latency is stable per (src, dst) pair: packets of one flow never
  // reorder, which the TCP-lite model (no sequence numbers) relies on.
  const std::uint64_t key =
      (std::uint64_t{packet.src.value()} << 32) | packet.dst.value();
  return latency_base_ + util::splitmix64(key) % latency_jitter_;
}

void Fabric::send(Packet packet) {
  ++packets_sent_;
  for (PacketSink* tap : taps_) tap->observe(packet, sim_.now());

  if (loss_rate_ > 0 && rng_.chance(loss_rate_)) {
    ++packets_dropped_;
    return;
  }

  // Darknet ranges swallow traffic into their sink: no host ever answers.
  for (const auto& darknet : darknets_) {
    if (darknet.range.contains(packet.dst)) {
      PacketSink* sink = darknet.sink;
      const sim::Duration delay = sample_latency(packet);
      sim_.after(delay, [sink, packet = std::move(packet), this] {
        sink->observe(packet, sim_.now());
      });
      return;
    }
  }

  const sim::Duration delay = sample_latency(packet);
  sim_.after(delay, [this, packet = std::move(packet)]() mutable {
    // Resolve at delivery time: hosts may churn while the packet is in
    // flight, in which case the packet is silently lost (as on the real
    // Internet when a route disappears).
    Host* host = host_at(packet.dst);
    if (host == nullptr) {
      ++packets_dropped_;
      return;
    }
    host->deliver(packet);
  });
}

}  // namespace ofh::net
