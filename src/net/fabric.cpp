#include "net/fabric.h"

#include <algorithm>
#include <vector>

#include "net/host.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ofh::net {

namespace {

// Fleet-wide fabric telemetry: sums over every Fabric instance, including
// the scan layer's private per-sweep replicas. All Domain::kSim — packet
// fates are pure functions of the simulation inputs, so these are
// byte-identical across scan_threads settings. Conservation invariant:
//   packets_sent ==
//       packets_delivered + packets_dropped + packets_faulted + inflight
// where inflight covers packets scheduled but not yet resolved when the
// simulation stops (zero after a full drain) and faulted counts terminal
// injector fates (drops and refusals; see net/faults.h).
struct FabricMetrics {
  obs::Counter sent = obs::counter("fabric.packets_sent");
  obs::Counter delivered = obs::counter("fabric.packets_delivered");
  obs::Counter dropped = obs::counter("fabric.packets_dropped");
  obs::Counter faulted = obs::counter("fabric.packets_faulted");
  obs::Counter host_crashes = obs::counter("fabric.host_crashes");
  obs::Gauge inflight = obs::gauge("fabric.packets_inflight");
  obs::Gauge hosts = obs::gauge("fabric.hosts_attached");
  obs::Histogram latency = obs::histogram("fabric.latency_usec");
  std::array<obs::Counter, kFaultKindCount> by_kind{};
};

const FabricMetrics& metrics() {
  static const FabricMetrics m = [] {
    FabricMetrics built;
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
      built.by_kind[i] = obs::counter(
          obs::labeled("fabric.faults_injected", "kind",
                       fault_kind_name(static_cast<FaultKind>(i))));
    }
    return built;
  }();
  return m;
}

void count_fault(FaultInjector& injector, FaultKind kind) {
  injector.count(kind);
  metrics().by_kind[static_cast<std::size_t>(kind)].inc();
}

void trace_fault(const Packet& packet, sim::Time now, FaultKind kind) {
  obs::trace_event(obs::TraceEventType::kPacketFault, now, packet.trace_id,
                   packet.src.value(), packet.dst.value(), packet.dst_port,
                   static_cast<std::uint8_t>(kind));
}

}  // namespace

void Fabric::register_host(Host& host) {
  hosts_[host.address().value()] = &host;
  metrics().hosts.add(1);
}

void Fabric::unregister_host(Host& host) {
  const auto it = hosts_.find(host.address().value());
  if (it != hosts_.end() && it->second == &host) {
    hosts_.erase(it);
    metrics().hosts.sub(1);
  }
}

sim::Duration Fabric::sample_latency(const Packet& packet) const {
  if (latency_jitter_ == 0) return latency_base_;
  // Latency is stable per (src, dst) pair: packets of one flow never
  // reorder, which the TCP-lite model (no sequence numbers) relies on.
  const std::uint64_t key =
      (std::uint64_t{packet.src.value()} << 32) | packet.dst.value();
  return latency_base_ + util::splitmix64(key) % latency_jitter_;
}

void Fabric::set_fault_schedule(const FaultSchedule& schedule) {
  if (schedule.empty()) {
    injector_.reset();
    return;
  }
  injector_ = std::make_unique<FaultInjector>(schedule, seed_);
  // Crash windows act on hosts, not packets: one sim event per boundary
  // wipes (start) or restores (end) the scoped hosts' connection state.
  for (const auto& window : schedule.windows) {
    if (window.kind != FaultKind::kCrash) continue;
    sim_.at(window.start,
            [this, window] { apply_crash_window(window, /*restart=*/false); });
    sim_.at(window.end,
            [this, window] { apply_crash_window(window, /*restart=*/true); });
  }
}

void Fabric::apply_crash_window(const FaultWindow& window, bool restart) {
  // Address-sorted victims: hosts_ is an unordered_map, and the kHostFault
  // event order must not depend on hash-table iteration order.
  std::vector<Host*> victims;
  // ofh-lint: allow(unordered-iteration) — collected then address-sorted below; hash order cannot reach the kHostFault event sequence
  for (const auto& [addr, host] : hosts_) {
    if (window.scope.contains(util::Ipv4Addr(addr))) victims.push_back(host);
  }
  std::sort(victims.begin(), victims.end(),
            [](const Host* lhs, const Host* rhs) {
              return lhs->address().value() < rhs->address().value();
            });
  for (Host* host : victims) {
    if (!restart) {
      host->fault_crash();
      metrics().host_crashes.inc();
    }
    obs::trace_event(obs::TraceEventType::kHostFault, sim_.now(), 0,
                     host->address().value(), 0, 0, restart ? 1 : 0);
  }
}

void Fabric::note_sent(const Packet& packet, sim::Time when) {
  ++packets_sent_;
  metrics().sent.inc();
  metrics().inflight.add(1);
  obs::trace_event(obs::TraceEventType::kPacketSend, when, packet.trace_id,
                   packet.src.value(), packet.dst.value(), packet.dst_port);
  for (PacketSink* tap : taps_) tap->observe(packet, when);
}

void Fabric::note_delivered(const Packet& packet, sim::Duration delay,
                            sim::Time when) {
  ++packets_delivered_;
  metrics().delivered.inc();
  metrics().inflight.sub(1);
  metrics().latency.observe(delay);
  obs::trace_event(obs::TraceEventType::kPacketDeliver, when, packet.trace_id,
                   packet.src.value(), packet.dst.value(), packet.dst_port);
}

void Fabric::note_dropped(const Packet& packet, sim::Time when) {
  ++packets_dropped_;
  metrics().dropped.inc();
  metrics().inflight.sub(1);
  obs::trace_event(obs::TraceEventType::kPacketDrop, when, packet.trace_id,
                   packet.src.value(), packet.dst.value(), packet.dst_port);
}

void Fabric::send(Packet packet) {
  // A packet sent from inside a traced context (a probe, or a host
  // responding to a traced delivery) inherits the ambient causal id.
  if (packet.trace_id == 0) packet.trace_id = obs::current_trace_id();
  note_sent(packet, sim_.now());

  if (loss_rate_ > 0 && rng_.chance(loss_rate_)) {
    note_dropped(packet, sim_.now());
    return;
  }

  sim::Duration extra_delay = 0;
  if (injector_ != nullptr) {
    const FaultDecision decision = injector_->decide(packet, sim_.now());
    if (decision.drop) {
      count_fault(*injector_, decision.drop_kind);
      ++packets_faulted_;
      metrics().faulted.inc();
      metrics().inflight.sub(1);
      trace_fault(packet, sim_.now(), decision.drop_kind);
      return;
    }
    if (decision.refuse) {
      count_fault(*injector_, FaultKind::kRefusal);
      ++packets_faulted_;
      metrics().faulted.inc();
      metrics().inflight.sub(1);
      trace_fault(packet, sim_.now(), FaultKind::kRefusal);
      // The ICMP-unreachable analogue in a TCP-lite world: answer the SYN
      // with an RST on the refused host's behalf, through the normal send
      // path (an RST is not a SYN, so this cannot recurse into refusal).
      Packet rst;
      rst.src = packet.dst;
      rst.dst = packet.src;
      rst.src_port = packet.dst_port;
      rst.dst_port = packet.src_port;
      rst.transport = Transport::kTcp;
      rst.tcp_flags = TcpFlags::kRst;
      rst.trace_id = packet.trace_id;
      send(std::move(rst));
      return;
    }
    if (decision.duplicate) {
      count_fault(*injector_, FaultKind::kDuplicate);
      trace_fault(packet, sim_.now(), FaultKind::kDuplicate);
      Packet copy = packet;
      copy.fault_copy = true;
      send(std::move(copy));  // counts as its own sent packet
    }
    if (decision.spike_delay > 0) {
      count_fault(*injector_, FaultKind::kLatencySpike);
      trace_fault(packet, sim_.now(), FaultKind::kLatencySpike);
      extra_delay += decision.spike_delay;
    }
    if (decision.reorder_delay > 0) {
      count_fault(*injector_, FaultKind::kReorder);
      trace_fault(packet, sim_.now(), FaultKind::kReorder);
      extra_delay += decision.reorder_delay;
    }
  }
  deliver_packet(std::move(packet), extra_delay);
}

void Fabric::send_flow(std::vector<FlowPacket> batch) {
  // Packets fire from the event loop, so (like the scheduled sends this
  // replaces) they never adopt the caller's ambient trace context: a flow
  // packet's trace_id is whatever the caller stamped, usually 0.
  const bool fabric_clean = injector_ == nullptr && loss_rate_ == 0.0;
  struct InlineSend {
    std::size_t index;
    sim::Time when;
  };
  std::vector<InlineSend> inline_sends;
  inline_sends.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    FlowPacket& fp = batch[i];
    if (fabric_clean && sink_for(fp.packet.dst) != nullptr) {
      inline_sends.push_back({i, fp.when});
      continue;
    }
    // Ineligible (lossy/faulty fabric, or a non-darknet destination):
    // exactly the per-packet scheduling this API replaces.
    sim_.at(fp.when, [this, packet = std::move(fp.packet)]() mutable {
      send(std::move(packet));
    });
  }
  if (inline_sends.empty()) return;

  // Phase 1 — sends, in the order the event queue would run them: by time,
  // ties broken by scheduling (input) order.
  std::stable_sort(inline_sends.begin(), inline_sends.end(),
                   [](const InlineSend& lhs, const InlineSend& rhs) {
                     return lhs.when < rhs.when;
                   });
  struct InlineDelivery {
    sim::Time when;
    std::size_t rank;  // send order == the delivery event's scheduling order
    std::size_t index;
    sim::Duration delay;
  };
  std::vector<InlineDelivery> deliveries;
  deliveries.reserve(inline_sends.size());
  for (std::size_t rank = 0; rank < inline_sends.size(); ++rank) {
    const InlineSend& entry = inline_sends[rank];
    const Packet& packet = batch[entry.index].packet;
    note_sent(packet, entry.when);
    const sim::Duration delay = sample_latency(packet);
    deliveries.push_back({entry.when + delay, rank, entry.index, delay});
  }

  // Phase 2 — darknet deliveries, again in event-queue order. Running all
  // sends before all deliveries is safe because taps and sinks are
  // independent observers keyed by the `when` timestamps they are handed.
  std::stable_sort(deliveries.begin(), deliveries.end(),
                   [](const InlineDelivery& lhs, const InlineDelivery& rhs) {
                     return lhs.when != rhs.when ? lhs.when < rhs.when
                                                 : lhs.rank < rhs.rank;
                   });
  for (const InlineDelivery& entry : deliveries) {
    const Packet& packet = batch[entry.index].packet;
    note_delivered(packet, entry.delay, entry.when);
    sink_for(packet.dst)->observe(packet, entry.when);
  }
}

void Fabric::send_flood(std::vector<Packet> packets) {
  if (packets.empty()) return;
  // send() semantics: synchronous sends from the caller's context, so the
  // ambient causal id is adopted here.
  for (Packet& packet : packets) {
    if (packet.trace_id == 0) packet.trace_id = obs::current_trace_id();
  }

  const util::Ipv4Addr victim = packets.front().dst;
  const std::uint16_t port = packets.front().dst_port;
  bool uniform = true;
  for (const Packet& packet : packets) {
    if (packet.dst.value() != victim.value() || packet.dst_port != port ||
        packet.transport != Transport::kTcp || !packet.is_syn_only()) {
      uniform = false;
      break;
    }
  }
  LazyHostSource::Verdict verdict = LazyHostSource::Verdict::kNotOwned;
  bool emulate = uniform && injector_ == nullptr && loss_rate_ == 0.0 &&
                 lazy_source_ != nullptr && host_at(victim) == nullptr &&
                 sink_for(victim) == nullptr;
  if (emulate) {
    verdict = lazy_source_->classify(packets.front());
    emulate = verdict == LazyHostSource::Verdict::kMaterialize ||
              verdict == LazyHostSource::Verdict::kReset;
  }
  if (!emulate) {
    for (Packet& packet : packets) send(std::move(packet));
    return;
  }

  // Emulated flood: the victim is owned but unmaterialized, and its
  // TCP-lite passive-open behaviour is a pure function of (listener
  // prediction, half-open ledger), so the whole exchange resolves inline.
  const sim::Time t0 = sim_.now();
  struct SynDelivery {
    sim::Time when;
    std::size_t index;
    sim::Duration delay;
  };
  std::vector<SynDelivery> syns;
  syns.reserve(packets.size());
  // Send-side effects run synchronously in input order, exactly as the
  // per-packet send() loop would.
  for (std::size_t i = 0; i < packets.size(); ++i) {
    note_sent(packets[i], t0);
    const sim::Duration delay = sample_latency(packets[i]);
    syns.push_back({t0 + delay, i, delay});
  }
  std::stable_sort(syns.begin(), syns.end(),
                   [](const SynDelivery& lhs, const SynDelivery& rhs) {
                     return lhs.when < rhs.when;
                   });

  // The victim's virtual kSynReceived entries. Entries whose GC horizon
  // already passed can never influence a query at t >= t0 again.
  auto& ledger = virtual_half_open_[victim.value()];
  std::erase_if(ledger,
                [t0](const VirtualHalfOpen& entry) { return entry.gc <= t0; });

  struct ReplyDelivery {
    Packet packet;
    sim::Time when;
    sim::Duration delay;
    std::size_t rank;
    PacketSink* sink;  // nullptr: consumed by an owned address, or dropped
    bool dropped;
  };
  std::vector<ReplyDelivery> replies;
  replies.reserve(packets.size());
  std::size_t rank = 0;
  for (const SynDelivery& entry : syns) {
    const Packet& syn = packets[entry.index];
    const sim::Time t = entry.when;
    note_delivered(syn, entry.delay, t);

    // Mirror TcpStack::handle's passive-open decision. A connection "exists"
    // if a live ledger entry holds the same (src, src_port) key.
    const std::uint64_t conn_key =
        (std::uint64_t{syn.src.value()} << 16) | syn.src_port;
    bool conn_exists = false;
    std::size_t half_open = 0;
    for (const VirtualHalfOpen& live : ledger) {
      if (live.gc > t) {
        ++half_open;
        if (live.key == conn_key) conn_exists = true;
      }
    }

    Packet reply;
    reply.src = victim;
    reply.dst = syn.src;
    reply.src_port = port;
    reply.dst_port = syn.src_port;
    reply.transport = Transport::kTcp;
    reply.trace_id = syn.trace_id;
    const bool accept = verdict == LazyHostSource::Verdict::kMaterialize &&
                        !conn_exists &&
                        half_open < TcpStack::kDefaultBacklogLimit;
    if (accept) {
      obs::trace_event(obs::TraceEventType::kTcpState, t, syn.trace_id,
                       victim.value(), syn.src.value(), port,
                       static_cast<std::uint8_t>(obs::TcpTrace::kSynReceived));
      reply.tcp_flags = TcpFlags::kSyn | TcpFlags::kAck;
      ledger.push_back({conn_key, t + TcpStack::kHalfOpenGcDelay});
    } else {
      if (verdict == LazyHostSource::Verdict::kMaterialize && !conn_exists) {
        note_emulated_backlog_drop();  // refused for capacity, not absence
      }
      // Like the real inline-RST path: no tcp.resets_sent, no state trace.
      reply.tcp_flags = TcpFlags::kRst;
    }

    note_sent(reply, t);
    const sim::Duration reply_delay = sample_latency(reply);
    const sim::Time reply_when = t + reply_delay;
    if (PacketSink* sink = sink_for(reply.dst)) {
      // Backscatter into a darknet: the common case for spoofed sources.
      replies.push_back(
          {std::move(reply), reply_when, reply_delay, rank++, sink, false});
    } else if (host_at(reply.dst) != nullptr) {
      // A spoofed source colliding with a registered host: hand off to the
      // event path at the send time so delivery-time host resolution (the
      // churn rule) stays exact.
      sim_.at(t, [this, reply = std::move(reply)]() mutable {
        deliver_packet(std::move(reply), 0);
      });
    } else if (lazy_source_->classify(reply) !=
               LazyHostSource::Verdict::kNotOwned) {
      // Owned but unmaterialized: a real stack ignores a SYN|ACK or RST
      // with no matching connection — delivered, consumed, no reaction.
      replies.push_back(
          {std::move(reply), reply_when, reply_delay, rank++, nullptr, false});
    } else {
      replies.push_back(
          {std::move(reply), reply_when, reply_delay, rank++, nullptr, true});
    }
  }

  std::stable_sort(replies.begin(), replies.end(),
                   [](const ReplyDelivery& lhs, const ReplyDelivery& rhs) {
                     return lhs.when != rhs.when ? lhs.when < rhs.when
                                                 : lhs.rank < rhs.rank;
                   });
  for (const ReplyDelivery& entry : replies) {
    if (entry.dropped) {
      note_dropped(entry.packet, entry.when);
    } else {
      note_delivered(entry.packet, entry.delay, entry.when);
      if (entry.sink != nullptr) entry.sink->observe(entry.packet, entry.when);
    }
  }
}

void Fabric::deliver_packet(Packet packet, sim::Duration extra_delay) {
  // Darknet ranges swallow traffic into their sink: no host ever answers.
  for (const auto& darknet : darknets_) {
    if (darknet.range.contains(packet.dst)) {
      PacketSink* sink = darknet.sink;
      const sim::Duration delay = sample_latency(packet) + extra_delay;
      sim_.after(delay, [sink, packet = std::move(packet), delay, this] {
        note_delivered(packet, delay, sim_.now());
        sink->observe(packet, sim_.now());
      });
      return;
    }
  }

  const sim::Duration delay = sample_latency(packet) + extra_delay;
  sim_.after(delay, [this, delay, packet = std::move(packet)]() mutable {
    // Resolve at delivery time: hosts may churn while the packet is in
    // flight, in which case the packet is silently lost (as on the real
    // Internet when a route disappears).
    Host* host = host_at(packet.dst);
    if (host == nullptr && lazy_source_ != nullptr) {
      // The address may be owned by the lazy source: an unmaterialized
      // population device. classify() answers what the real stacks would
      // do so most packets never force a Host into existence.
      switch (lazy_source_->classify(packet)) {
        case LazyHostSource::Verdict::kNotOwned:
          break;  // genuinely unrouted: fall through to the drop path
        case LazyHostSource::Verdict::kConsume:
          // Delivered into a real stack that would not react (stray ACK,
          // unbound UDP port): accounting only.
          note_delivered(packet, delay, sim_.now());
          return;
        case LazyHostSource::Verdict::kReset: {
          note_delivered(packet, delay, sim_.now());
          // Mirror TcpStack::handle's closed-port reply: a manual RST
          // through the normal send path, inheriting the SYN's causal id
          // (the real path adopts it from the delivery's ambient context).
          // Like that inline path, this does not count tcp.resets_sent.
          Packet rst;
          rst.src = packet.dst;
          rst.dst = packet.src;
          rst.src_port = packet.dst_port;
          rst.dst_port = packet.src_port;
          rst.transport = Transport::kTcp;
          rst.tcp_flags = TcpFlags::kRst;
          rst.trace_id = packet.trace_id;
          send(std::move(rst));
          return;
        }
        case LazyHostSource::Verdict::kMaterialize:
          host = lazy_source_->materialize(packet.dst);
          break;
      }
    }
    if (host == nullptr) {
      note_dropped(packet, sim_.now());
      return;
    }
    note_delivered(packet, delay, sim_.now());
    host->deliver(packet);
  });
}

}  // namespace ofh::net
