#include "net/fabric.h"

#include <algorithm>
#include <vector>

#include "net/host.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ofh::net {

namespace {

// Fleet-wide fabric telemetry: sums over every Fabric instance, including
// the scan layer's private per-sweep replicas. All Domain::kSim — packet
// fates are pure functions of the simulation inputs, so these are
// byte-identical across scan_threads settings. Conservation invariant:
//   packets_sent ==
//       packets_delivered + packets_dropped + packets_faulted + inflight
// where inflight covers packets scheduled but not yet resolved when the
// simulation stops (zero after a full drain) and faulted counts terminal
// injector fates (drops and refusals; see net/faults.h).
struct FabricMetrics {
  obs::Counter sent = obs::counter("fabric.packets_sent");
  obs::Counter delivered = obs::counter("fabric.packets_delivered");
  obs::Counter dropped = obs::counter("fabric.packets_dropped");
  obs::Counter faulted = obs::counter("fabric.packets_faulted");
  obs::Counter host_crashes = obs::counter("fabric.host_crashes");
  obs::Gauge inflight = obs::gauge("fabric.packets_inflight");
  obs::Gauge hosts = obs::gauge("fabric.hosts_attached");
  obs::Histogram latency = obs::histogram("fabric.latency_usec");
  std::array<obs::Counter, kFaultKindCount> by_kind{};
};

const FabricMetrics& metrics() {
  static const FabricMetrics m = [] {
    FabricMetrics built;
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
      built.by_kind[i] = obs::counter(
          obs::labeled("fabric.faults_injected", "kind",
                       fault_kind_name(static_cast<FaultKind>(i))));
    }
    return built;
  }();
  return m;
}

void count_fault(FaultInjector& injector, FaultKind kind) {
  injector.count(kind);
  metrics().by_kind[static_cast<std::size_t>(kind)].inc();
}

void trace_fault(const Packet& packet, sim::Time now, FaultKind kind) {
  obs::trace_event(obs::TraceEventType::kPacketFault, now, packet.trace_id,
                   packet.src.value(), packet.dst.value(), packet.dst_port,
                   static_cast<std::uint8_t>(kind));
}

}  // namespace

void Fabric::register_host(Host& host) {
  hosts_[host.address().value()] = &host;
  metrics().hosts.add(1);
}

void Fabric::unregister_host(Host& host) {
  const auto it = hosts_.find(host.address().value());
  if (it != hosts_.end() && it->second == &host) {
    hosts_.erase(it);
    metrics().hosts.sub(1);
  }
}

sim::Duration Fabric::sample_latency(const Packet& packet) const {
  if (latency_jitter_ == 0) return latency_base_;
  // Latency is stable per (src, dst) pair: packets of one flow never
  // reorder, which the TCP-lite model (no sequence numbers) relies on.
  const std::uint64_t key =
      (std::uint64_t{packet.src.value()} << 32) | packet.dst.value();
  return latency_base_ + util::splitmix64(key) % latency_jitter_;
}

void Fabric::set_fault_schedule(const FaultSchedule& schedule) {
  if (schedule.empty()) {
    injector_.reset();
    return;
  }
  injector_ = std::make_unique<FaultInjector>(schedule, seed_);
  // Crash windows act on hosts, not packets: one sim event per boundary
  // wipes (start) or restores (end) the scoped hosts' connection state.
  for (const auto& window : schedule.windows) {
    if (window.kind != FaultKind::kCrash) continue;
    sim_.at(window.start,
            [this, window] { apply_crash_window(window, /*restart=*/false); });
    sim_.at(window.end,
            [this, window] { apply_crash_window(window, /*restart=*/true); });
  }
}

void Fabric::apply_crash_window(const FaultWindow& window, bool restart) {
  // Address-sorted victims: hosts_ is an unordered_map, and the kHostFault
  // event order must not depend on hash-table iteration order.
  std::vector<Host*> victims;
  // ofh-lint: allow(unordered-iteration) — collected then address-sorted below; hash order cannot reach the kHostFault event sequence
  for (const auto& [addr, host] : hosts_) {
    if (window.scope.contains(util::Ipv4Addr(addr))) victims.push_back(host);
  }
  std::sort(victims.begin(), victims.end(),
            [](const Host* lhs, const Host* rhs) {
              return lhs->address().value() < rhs->address().value();
            });
  for (Host* host : victims) {
    if (!restart) {
      host->fault_crash();
      metrics().host_crashes.inc();
    }
    obs::trace_event(obs::TraceEventType::kHostFault, sim_.now(), 0,
                     host->address().value(), 0, 0, restart ? 1 : 0);
  }
}

void Fabric::send(Packet packet) {
  // A packet sent from inside a traced context (a probe, or a host
  // responding to a traced delivery) inherits the ambient causal id.
  if (packet.trace_id == 0) packet.trace_id = obs::current_trace_id();
  ++packets_sent_;
  metrics().sent.inc();
  metrics().inflight.add(1);
  obs::trace_event(obs::TraceEventType::kPacketSend, sim_.now(),
                   packet.trace_id, packet.src.value(), packet.dst.value(),
                   packet.dst_port);
  for (PacketSink* tap : taps_) tap->observe(packet, sim_.now());

  if (loss_rate_ > 0 && rng_.chance(loss_rate_)) {
    ++packets_dropped_;
    metrics().dropped.inc();
    metrics().inflight.sub(1);
    obs::trace_event(obs::TraceEventType::kPacketDrop, sim_.now(),
                     packet.trace_id, packet.src.value(), packet.dst.value(),
                     packet.dst_port);
    return;
  }

  sim::Duration extra_delay = 0;
  if (injector_ != nullptr) {
    const FaultDecision decision = injector_->decide(packet, sim_.now());
    if (decision.drop) {
      count_fault(*injector_, decision.drop_kind);
      ++packets_faulted_;
      metrics().faulted.inc();
      metrics().inflight.sub(1);
      trace_fault(packet, sim_.now(), decision.drop_kind);
      return;
    }
    if (decision.refuse) {
      count_fault(*injector_, FaultKind::kRefusal);
      ++packets_faulted_;
      metrics().faulted.inc();
      metrics().inflight.sub(1);
      trace_fault(packet, sim_.now(), FaultKind::kRefusal);
      // The ICMP-unreachable analogue in a TCP-lite world: answer the SYN
      // with an RST on the refused host's behalf, through the normal send
      // path (an RST is not a SYN, so this cannot recurse into refusal).
      Packet rst;
      rst.src = packet.dst;
      rst.dst = packet.src;
      rst.src_port = packet.dst_port;
      rst.dst_port = packet.src_port;
      rst.transport = Transport::kTcp;
      rst.tcp_flags = TcpFlags::kRst;
      rst.trace_id = packet.trace_id;
      send(std::move(rst));
      return;
    }
    if (decision.duplicate) {
      count_fault(*injector_, FaultKind::kDuplicate);
      trace_fault(packet, sim_.now(), FaultKind::kDuplicate);
      Packet copy = packet;
      copy.fault_copy = true;
      send(std::move(copy));  // counts as its own sent packet
    }
    if (decision.spike_delay > 0) {
      count_fault(*injector_, FaultKind::kLatencySpike);
      trace_fault(packet, sim_.now(), FaultKind::kLatencySpike);
      extra_delay += decision.spike_delay;
    }
    if (decision.reorder_delay > 0) {
      count_fault(*injector_, FaultKind::kReorder);
      trace_fault(packet, sim_.now(), FaultKind::kReorder);
      extra_delay += decision.reorder_delay;
    }
  }
  deliver_packet(std::move(packet), extra_delay);
}

void Fabric::deliver_packet(Packet packet, sim::Duration extra_delay) {
  // Darknet ranges swallow traffic into their sink: no host ever answers.
  for (const auto& darknet : darknets_) {
    if (darknet.range.contains(packet.dst)) {
      PacketSink* sink = darknet.sink;
      const sim::Duration delay = sample_latency(packet) + extra_delay;
      sim_.after(delay, [sink, packet = std::move(packet), delay, this] {
        ++packets_delivered_;
        metrics().delivered.inc();
        metrics().inflight.sub(1);
        metrics().latency.observe(delay);
        obs::trace_event(obs::TraceEventType::kPacketDeliver, sim_.now(),
                         packet.trace_id, packet.src.value(),
                         packet.dst.value(), packet.dst_port);
        sink->observe(packet, sim_.now());
      });
      return;
    }
  }

  const sim::Duration delay = sample_latency(packet) + extra_delay;
  sim_.after(delay, [this, delay, packet = std::move(packet)]() mutable {
    // Resolve at delivery time: hosts may churn while the packet is in
    // flight, in which case the packet is silently lost (as on the real
    // Internet when a route disappears).
    Host* host = host_at(packet.dst);
    if (host == nullptr) {
      ++packets_dropped_;
      metrics().dropped.inc();
      metrics().inflight.sub(1);
      obs::trace_event(obs::TraceEventType::kPacketDrop, sim_.now(),
                       packet.trace_id, packet.src.value(),
                       packet.dst.value(), packet.dst_port);
      return;
    }
    ++packets_delivered_;
    metrics().delivered.inc();
    metrics().inflight.sub(1);
    metrics().latency.observe(delay);
    obs::trace_event(obs::TraceEventType::kPacketDeliver, sim_.now(),
                     packet.trace_id, packet.src.value(), packet.dst.value(),
                     packet.dst_port);
    host->deliver(packet);
  });
}

}  // namespace ofh::net
