#include "net/fabric.h"

#include "net/host.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ofh::net {

namespace {

// Fleet-wide fabric telemetry: sums over every Fabric instance, including
// the scan layer's private per-sweep replicas. All Domain::kSim — packet
// fates are pure functions of the simulation inputs, so these are
// byte-identical across scan_threads settings. Conservation invariant:
//   packets_sent == packets_delivered + packets_dropped + packets_inflight
// where inflight covers packets scheduled but not yet resolved when the
// simulation stops (zero after a full drain).
struct FabricMetrics {
  obs::Counter sent = obs::counter("fabric.packets_sent");
  obs::Counter delivered = obs::counter("fabric.packets_delivered");
  obs::Counter dropped = obs::counter("fabric.packets_dropped");
  obs::Gauge inflight = obs::gauge("fabric.packets_inflight");
  obs::Gauge hosts = obs::gauge("fabric.hosts_attached");
  obs::Histogram latency = obs::histogram("fabric.latency_usec");
};

const FabricMetrics& metrics() {
  static const FabricMetrics m;
  return m;
}

}  // namespace

void Fabric::register_host(Host& host) {
  hosts_[host.address().value()] = &host;
  metrics().hosts.add(1);
}

void Fabric::unregister_host(Host& host) {
  const auto it = hosts_.find(host.address().value());
  if (it != hosts_.end() && it->second == &host) {
    hosts_.erase(it);
    metrics().hosts.sub(1);
  }
}

sim::Duration Fabric::sample_latency(const Packet& packet) const {
  if (latency_jitter_ == 0) return latency_base_;
  // Latency is stable per (src, dst) pair: packets of one flow never
  // reorder, which the TCP-lite model (no sequence numbers) relies on.
  const std::uint64_t key =
      (std::uint64_t{packet.src.value()} << 32) | packet.dst.value();
  return latency_base_ + util::splitmix64(key) % latency_jitter_;
}

void Fabric::send(Packet packet) {
  // A packet sent from inside a traced context (a probe, or a host
  // responding to a traced delivery) inherits the ambient causal id.
  if (packet.trace_id == 0) packet.trace_id = obs::current_trace_id();
  ++packets_sent_;
  metrics().sent.inc();
  metrics().inflight.add(1);
  obs::trace_event(obs::TraceEventType::kPacketSend, sim_.now(),
                   packet.trace_id, packet.src.value(), packet.dst.value(),
                   packet.dst_port);
  for (PacketSink* tap : taps_) tap->observe(packet, sim_.now());

  if (loss_rate_ > 0 && rng_.chance(loss_rate_)) {
    ++packets_dropped_;
    metrics().dropped.inc();
    metrics().inflight.sub(1);
    obs::trace_event(obs::TraceEventType::kPacketDrop, sim_.now(),
                     packet.trace_id, packet.src.value(), packet.dst.value(),
                     packet.dst_port);
    return;
  }

  // Darknet ranges swallow traffic into their sink: no host ever answers.
  for (const auto& darknet : darknets_) {
    if (darknet.range.contains(packet.dst)) {
      PacketSink* sink = darknet.sink;
      const sim::Duration delay = sample_latency(packet);
      sim_.after(delay, [sink, packet = std::move(packet), delay, this] {
        ++packets_delivered_;
        metrics().delivered.inc();
        metrics().inflight.sub(1);
        metrics().latency.observe(delay);
        obs::trace_event(obs::TraceEventType::kPacketDeliver, sim_.now(),
                         packet.trace_id, packet.src.value(),
                         packet.dst.value(), packet.dst_port);
        sink->observe(packet, sim_.now());
      });
      return;
    }
  }

  const sim::Duration delay = sample_latency(packet);
  sim_.after(delay, [this, delay, packet = std::move(packet)]() mutable {
    // Resolve at delivery time: hosts may churn while the packet is in
    // flight, in which case the packet is silently lost (as on the real
    // Internet when a route disappears).
    Host* host = host_at(packet.dst);
    if (host == nullptr) {
      ++packets_dropped_;
      metrics().dropped.inc();
      metrics().inflight.sub(1);
      obs::trace_event(obs::TraceEventType::kPacketDrop, sim_.now(),
                       packet.trace_id, packet.src.value(),
                       packet.dst.value(), packet.dst_port);
      return;
    }
    ++packets_delivered_;
    metrics().delivered.inc();
    metrics().inflight.sub(1);
    metrics().latency.observe(delay);
    obs::trace_event(obs::TraceEventType::kPacketDeliver, sim_.now(),
                     packet.trace_id, packet.src.value(), packet.dst.value(),
                     packet.dst_port);
    host->deliver(packet);
  });
}

}  // namespace ofh::net
